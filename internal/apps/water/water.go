// Package water implements the paper's Water benchmark: an n-squared
// molecular-dynamics code (after SPLASH/SPLASH-2 Water) evaluating forces
// and potentials in a system of water molecules over a number of time
// steps (paper §5.3; Table 1: 512 molecules, 20 iterations).
//
// Following the paper's data-parallel formulation, each molecule computes
// interactions with the half of the remaining molecules following it in
// the ordered data set, restricted to a spherical cutoff of half the box
// length. A molecule's position, updated by its owner in one phase, is
// read by the n/2 preceding molecules' owners in the force phase of the
// next iteration — a static, repetitive producer-consumer pattern, the
// compiler-directed optimization target. Pair forces accumulate into
// per-processor private arrays combined by a language-level reduction
// (reductions are outside the predictive protocol's scope, paper §1).
package water

import (
	"fmt"
	"math"
	"math/rand"

	"presto/internal/rt"
	"presto/internal/sim"
)

// Phase directive IDs (as the C** compiler would number the parallel
// phases of main's loop).
const (
	PhaseAdvance = 1 // positions updated by owners (owner writes)
	PhaseForces  = 2 // half-shell pair interactions (unstructured reads)
	PhaseCorrect = 3 // velocity update from combined forces (owner-only)
)

// Config describes one Water run.
type Config struct {
	Machine   rt.Config
	Molecules int // paper: 512
	Steps     int // paper: 20
	Seed      int64

	// CostPair is the modeled computation per pair interaction
	// (distance check + Lennard-Jones-style force for pairs in range).
	CostPair sim.Time
	// CostAdvance is the modeled computation per molecule per
	// advance/correct phase.
	CostAdvance sim.Time

	// Splash selects the Splash-2-style shared-memory variant (paper
	// Figure 7's third bar): reaction forces are accumulated into the
	// shared force array under per-molecule locks instead of a
	// language-level reduction. SplashLockBatch models how many molecules
	// one lock acquisition covers.
	Splash          bool
	SplashLockBatch int
}

// Defaults fills unset fields with the paper's workload and a cost
// calibration for a mid-90s processor.
func (c Config) Defaults() Config {
	if c.Molecules == 0 {
		c.Molecules = 512
	}
	if c.Steps == 0 {
		c.Steps = 20
	}
	if c.Seed == 0 {
		c.Seed = 1996
	}
	if c.CostPair == 0 {
		// ~300 flops per site-site pair interaction on a ~33MHz CM-5
		// SPARC node.
		c.CostPair = 10 * sim.Microsecond
	}
	if c.CostAdvance == 0 {
		c.CostAdvance = 8 * sim.Microsecond
	}
	if c.SplashLockBatch == 0 {
		c.SplashLockBatch = 8
	}
	return c
}

// Result carries the run's timing and validation data.
type Result struct {
	Machine   *rt.Machine
	Breakdown rt.Breakdown
	Counters  rt.Counters
	// Energy is the final system checksum (sum of squared velocities plus
	// potential accumulator) used to validate protocol equivalence.
	Energy float64
}

// box is the simulation box edge; the cutoff is box/2 (paper §5.3).
const box = 1.0

// Run executes Water on a machine built from cfg.
func Run(cfg Config) (*Result, error) { return RunDebug(cfg, 0) }

// RunDebug is Run with a kernel event budget (0 = unlimited), used to
// diagnose livelock in tests.
func RunDebug(cfg Config, maxEvents int64) (*Result, error) {
	c := cfg.Defaults()
	n := c.Molecules
	m := rt.New(c.Machine)
	m.NamePhase(PhaseAdvance, "advance")
	m.NamePhase(PhaseForces, "forces")
	m.NamePhase(PhaseCorrect, "correct")
	m.NamePhase(PhaseForces+10, "forces-splash")
	m.NamePhase(PhaseCorrect+10, "correct-splash")
	m.Kernel.MaxEvents = maxEvents

	// Positions: 4 float64 fields (x, y, z, pad) so one molecule occupies
	// exactly one 32-byte block at the smallest block size; larger blocks
	// hold several neighboring molecules of the same owner.
	pos := m.NewArray1D("pos", n, 4, false)
	// Velocities and forces are only ever touched by the owner.
	vel := m.NewArray1D("vel", n, 4, false)
	// The Splash variant accumulates reaction forces into a shared array
	// under (modeled) per-molecule locks instead of a reduction.
	var sharedForce *rt.Array1D
	if c.Splash {
		sharedForce = m.NewArray1D("force", n, 4, false)
	}

	// Initial lattice with thermal jitter (synthetic equivalent of the
	// SPLASH input deck; same size and interaction structure).
	side := int(math.Ceil(math.Cbrt(float64(n))))
	rng := rand.New(rand.NewSource(c.Seed))
	initX := make([]float64, 3*n)
	initV := make([]float64, 3*n)
	for i := 0; i < n; i++ {
		ix, iy, iz := i%side, (i/side)%side, i/(side*side)
		initX[3*i+0] = (float64(ix) + 0.5 + 0.1*rng.Float64()) * box / float64(side)
		initX[3*i+1] = (float64(iy) + 0.5 + 0.1*rng.Float64()) * box / float64(side)
		initX[3*i+2] = (float64(iz) + 0.5 + 0.1*rng.Float64()) * box / float64(side)
		initV[3*i+0] = 0.1 * (rng.Float64() - 0.5)
		initV[3*i+1] = 0.1 * (rng.Float64() - 0.5)
		initV[3*i+2] = 0.1 * (rng.Float64() - 0.5)
	}

	const (
		dt     = 1e-4
		cutoff = box / 2
	)
	cut2 := cutoff * cutoff

	energies := make([]float64, c.Machine.Nodes)
	err := m.Run(func(w *rt.Worker) {
		lo, hi := pos.MyRange(w)
		// Owner-local state (private in the C** program).
		force := make([]float64, 3*n) // private force accumulator
		myVel := make([]float64, 3*(hi-lo))
		var potential float64

		// Initialization phase: owners write their molecules.
		w.Phase(PhaseAdvance, func() {
			for i := lo; i < hi; i++ {
				w.WriteF64(pos.At(i, 0), initX[3*i+0])
				w.WriteF64(pos.At(i, 1), initX[3*i+1])
				w.WriteF64(pos.At(i, 2), initX[3*i+2])
				w.WriteF64(vel.At(i, 0), initV[3*i+0])
				w.WriteF64(vel.At(i, 1), initV[3*i+1])
				w.WriteF64(vel.At(i, 2), initV[3*i+2])
				copy(myVel[3*(i-lo):], initV[3*i:3*i+3])
			}
			w.Compute(sim.Time(hi-lo) * c.CostAdvance)
		})

		half := n / 2
		for step := 0; step < c.Steps; step++ {
			// Force phase: half-shell pair interactions. Every following
			// molecule's position is read (the cutoff test needs it),
			// which is the paper's static n/2 producer-consumer pattern.
			for i := range force {
				force[i] = 0
			}
			w.Phase(PhaseForces, func() {
				for i := lo; i < hi; i++ {
					xi := w.ReadF64(pos.At(i, 0))
					yi := w.ReadF64(pos.At(i, 1))
					zi := w.ReadF64(pos.At(i, 2))
					for k := 1; k <= half; k++ {
						j := (i + k) % n
						xj := w.ReadF64(pos.At(j, 0))
						yj := w.ReadF64(pos.At(j, 1))
						zj := w.ReadF64(pos.At(j, 2))
						dx, dy, dz := xi-xj, yi-yj, zi-zj
						r2 := dx*dx + dy*dy + dz*dz
						if r2 < cut2 && r2 > 0 {
							// Softened inverse-square pair force.
							inv := 1 / (r2 + 1e-4)
							f := inv * inv
							force[3*i+0] += f * dx
							force[3*i+1] += f * dy
							force[3*i+2] += f * dz
							force[3*j+0] -= f * dx
							force[3*j+1] -= f * dy
							force[3*j+2] -= f * dz
							potential += inv
						}
					}
					w.Compute(sim.Time(half) * c.CostPair)
				}
			})

			var total []float64
			if c.Splash {
				// Splash-2 style: push accumulated contributions into the
				// shared force array with atomic (lock-protected) updates,
				// then owners read back their molecules' totals. Updates
				// are batched SplashLockBatch molecules per lock.
				w.Phase(PhaseForces+10, func() {
					for j := 0; j < n; j++ {
						fx, fy, fz := force[3*j], force[3*j+1], force[3*j+2]
						if fx == 0 && fy == 0 && fz == 0 {
							continue
						}
						w.AtomicAddF64(sharedForce.At(j, 0), fx)
						w.AtomicAddF64(sharedForce.At(j, 1), fy)
						w.AtomicAddF64(sharedForce.At(j, 2), fz)
						if j%c.SplashLockBatch == 0 {
							w.Compute(2 * sim.Microsecond) // lock handoff
						}
					}
				})
				total = make([]float64, 3*(hi-lo))
				w.Phase(PhaseCorrect+10, func() {
					for i := lo; i < hi; i++ {
						for d := 0; d < 3; d++ {
							a := sharedForce.At(i, d)
							total[3*(i-lo)+d] = w.ReadF64(a)
							w.WriteF64(a, 0) // reset for the next step
						}
					}
				})
			} else {
				// Combine private force arrays (language-level reduction).
				total = w.CombineArrays(force, 3*lo, 3*hi)
			}

			// Correct phase: owners update velocities (local state).
			w.Phase(PhaseCorrect, func() {
				for i := lo; i < hi; i++ {
					for d := 0; d < 3; d++ {
						myVel[3*(i-lo)+d] += dt * total[3*(i-lo)+d]
					}
				}
				w.Compute(sim.Time(hi-lo) * c.CostAdvance)
			})

			// Advance phase: owners move their molecules (the producer
			// side of the repetitive pattern).
			w.Phase(PhaseAdvance, func() {
				for i := lo; i < hi; i++ {
					for d := 0; d < 3; d++ {
						a := pos.At(i, d)
						x := w.ReadF64(a) + dt*myVel[3*(i-lo)+d]
						// Periodic box.
						if x < 0 {
							x += box
						} else if x >= box {
							x -= box
						}
						w.WriteF64(a, x)
					}
				}
				w.Compute(sim.Time(hi-lo) * c.CostAdvance)
			})
		}

		var e float64
		for _, v := range myVel {
			e += v * v
		}
		energies[w.ID] = e + potential
	})
	if err != nil {
		return &Result{Machine: m}, fmt.Errorf("water: %w", err)
	}

	var energy float64
	for _, e := range energies {
		energy += e
	}
	return &Result{
		Machine:   m,
		Breakdown: m.Breakdown(),
		Counters:  m.Counters(),
		Energy:    energy,
	}, nil
}
