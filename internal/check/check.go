// Package check verifies coherence-protocol invariants over a quiescent
// machine (typically after a run, when all transactions have drained).
// It is the repository's protocol oracle: the write-invalidate protocols
// (Stache and the predictive protocol) must satisfy single-writer,
// tag/directory agreement, and value coherence at quiescence. The
// write-update baseline intentionally violates value coherence (stale
// read-only copies between pushes), so the checker exempts it.
package check

import (
	"bytes"
	"fmt"

	"presto/internal/memory"
	"presto/internal/rt"
	"presto/internal/tempest"
	"presto/internal/trace"
)

// violationEvents caps the trace context attached to each violation.
const violationEvents = 16

// Violation describes one invariant failure.
type Violation struct {
	Block memory.Block
	Home  int
	Msg   string
	// Events holds the last traced protocol events involving the block's
	// home node and any implicated remote nodes (populated when the
	// machine ran with a trace ring attached).
	Events []trace.Event
}

func (v Violation) String() string {
	s := fmt.Sprintf("block %#x (home %d): %s", uint64(v.Block), v.Home, v.Msg)
	if len(v.Events) > 0 {
		var b bytes.Buffer
		b.WriteString(s)
		fmt.Fprintf(&b, "\n  last %d trace events for implicated nodes:", len(v.Events))
		for _, e := range v.Events {
			fmt.Fprintf(&b, "\n    %v", e)
		}
		return b.String()
	}
	return s
}

// Machine audits every materialized directory entry of a finished
// machine and returns all invariant violations found. When the machine
// ran with a trace ring, each violation carries the tail of the protocol
// event log for the offending block's home and implicated remote nodes.
func Machine(m *rt.Machine) []Violation {
	var out []Violation
	valueCheck := m.Cfg.Protocol != rt.ProtoUpdate
	for _, home := range m.Nodes {
		home.Dir.ForEach(func(b memory.Block, e *tempest.DirEntry) {
			vs := auditEntry(m, home, b, e, valueCheck)
			if len(vs) > 0 && m.Ring != nil {
				nodes := implicatedNodes(home.ID, e)
				evs := m.Ring.EventsFor(nodes, violationEvents)
				for i := range vs {
					vs[i].Events = evs
				}
			}
			out = append(out, vs...)
		})
	}
	return out
}

// implicatedNodes lists the nodes whose trace history explains a
// violation on this entry: the home, the exclusive owner, and any
// recorded sharers.
func implicatedNodes(home int, e *tempest.DirEntry) []int {
	nodes := []int{home}
	if e.State == tempest.DirRemoteExcl && e.Owner >= 0 && e.Owner != home {
		nodes = append(nodes, e.Owner)
	}
	e.Sharers.ForEach(func(id int) {
		if id != home {
			nodes = append(nodes, id)
		}
	})
	return nodes
}

func auditEntry(m *rt.Machine, home *tempest.Node, b memory.Block, e *tempest.DirEntry, valueCheck bool) []Violation {
	var out []Violation
	add := func(format string, args ...any) {
		out = append(out, Violation{Block: b, Home: home.ID, Msg: fmt.Sprintf(format, args...)})
	}

	if e.State == tempest.DirAwaitAcks || e.State == tempest.DirAwaitWB {
		add("transient state %v at quiescence", e.State)
		return out
	}
	if e.PendingLen() > 0 {
		add("%d pending requests at quiescence", e.PendingLen())
	}

	tagOf := func(n *tempest.Node) memory.Tag {
		if l := n.Store.Line(b); l != nil {
			return l.Tag
		}
		return memory.Invalid
	}

	switch e.State {
	case tempest.DirHome:
		homeTag := tagOf(home)
		if homeTag == memory.Invalid {
			add("home copy invalid in DirHome")
		}
		if !e.Sharers.Empty() && homeTag == memory.ReadWrite && valueCheck {
			add("home writable while %d sharers hold copies", e.Sharers.Count())
		}
		var homeData []byte
		if l := home.Store.Line(b); l != nil {
			homeData = l.Data
		}
		for _, n := range m.Nodes {
			if n.ID == home.ID {
				continue
			}
			t := tagOf(n)
			if e.Sharers.Has(n.ID) {
				if t != memory.ReadOnly {
					add("sharer %d has tag %v, want ReadOnly", n.ID, t)
				}
				if valueCheck && homeData != nil {
					if l := n.Store.Line(b); l != nil && !bytes.Equal(l.Data, homeData) {
						add("sharer %d data diverges from home copy", n.ID)
					}
				}
			} else if t != memory.Invalid {
				add("non-sharer %d has tag %v", n.ID, t)
			}
		}
	case tempest.DirRemoteExcl:
		if e.Owner < 0 || e.Owner >= len(m.Nodes) {
			add("bad owner %d", e.Owner)
			return out
		}
		if !e.Sharers.Empty() {
			add("sharers %v alongside exclusive owner %d", e.Sharers, e.Owner)
		}
		for _, n := range m.Nodes {
			t := tagOf(n)
			switch {
			case n.ID == e.Owner:
				if t != memory.ReadWrite {
					add("owner %d has tag %v, want ReadWrite", n.ID, t)
				}
			default:
				if t != memory.Invalid {
					add("node %d has tag %v while %d owns exclusively", n.ID, t, e.Owner)
				}
			}
		}
	}
	return out
}

// Accounting audits the machine's pre-send bookkeeping at quiescence and
// returns human-readable violations. Two exact identities must hold for
// the write-invalidate protocols:
//
//  1. per node: presends installed == hits + stale + raced +
//     still-unconsumed (every installed pre-send is eventually consumed,
//     invalidated, noted as racing a fault, or left fresh — none may
//     vanish), and
//  2. machine-wide: pre-sends sent from homes == pre-sends installed at
//     consumers (remote grants only; the pre-send walk never sends to
//     itself).
//
// With node-leader aggregation (rt.Config.Aggregate) a third exact
// identity binds machine-wide: every bulk entry coalesced into a
// leader-to-leader aggregate must be redistributed by a group leader
// (AggEntriesOut == AggEntriesIn), and no node may hold buffered
// entries at quiescence. A lost entry never corrupts memory, but it is
// not always self-healing either: on the pre-send path the home
// registers the consumer as a sharer before the data travels, so a
// dropped entry makes the home treat the consumer's refetch as already
// in flight and the run deadlocks. Whichever way a loss manifests —
// wedged run or completed run with a counter gap — this conservation
// check plus the run error is what catches an aggregate dropping data,
// not the memory hash.
//
// The identities are trivially zero for non-predictive protocols (and
// unaggregated machines), so the audit is safe to run on any machine.
func Accounting(m *rt.Machine) []string {
	var out []string
	var sent, installed int64
	var aggOut, aggIn int64
	for _, n := range m.Nodes {
		aggOut += n.Stats.AggEntriesOut
		aggIn += n.Stats.AggEntriesIn
		if pend := n.AggPending(); pend != 0 {
			out = append(out, fmt.Sprintf(
				"node %d: %d bulk entries still buffered in the aggregation layer at quiescence", n.ID, pend))
		}
	}
	if aggOut != aggIn {
		out = append(out, fmt.Sprintf(
			"machine: aggregation conservation broken: %d entries coalesced, %d redistributed", aggOut, aggIn))
	}
	for _, n := range m.Nodes {
		in := n.Met.PresendsIn.Value()
		hits := n.Met.PresendHits.Value()
		stale := n.Met.PresendsStale.Value()
		raced := n.Met.PresendsRaced.Value()
		fresh := int64(n.PresendFreshCount())
		if in != hits+stale+raced+fresh {
			out = append(out, fmt.Sprintf(
				"node %d: presend accounting broken: in %d != hits %d + stale %d + raced %d + fresh %d",
				n.ID, in, hits, stale, raced, fresh))
		}
		sent += n.Stats.PresendsSent
		installed += in
	}
	// A full schedule flush (FlushSchedules(-1)) zeroes the installed-side
	// counters but not the cumulative sent counter, so the machine-wide
	// identity only binds when no flush happened; flushes make it a <=.
	if installed > sent {
		out = append(out, fmt.Sprintf(
			"machine: %d presends installed exceed %d sent", installed, sent))
	}
	return out
}

// Report renders violations, or "ok" when empty.
func Report(vs []Violation) string {
	if len(vs) == 0 {
		return "ok"
	}
	var b bytes.Buffer
	for _, v := range vs {
		fmt.Fprintln(&b, v)
	}
	return b.String()
}
