package check

import (
	"math/rand"
	"strings"
	"testing"

	"presto/internal/memory"
	"presto/internal/rt"
)

// runRandom executes a random phase-structured workload and returns the
// machine for auditing.
func runRandom(t *testing.T, proto rt.ProtocolKind, seed int64, bs int) *rt.Machine {
	t.Helper()
	m := rt.New(rt.Config{Nodes: 6, BlockSize: bs, Protocol: proto})
	arr := m.NewArray1D("x", 96, 1, false)
	err := m.Run(func(w *rt.Worker) {
		lo, hi := arr.MyRange(w)
		rng := rand.New(rand.NewSource(seed + int64(w.ID)))
		for it := 0; it < 4; it++ {
			w.Phase(1, func() {
				for i := lo; i < hi; i++ {
					w.WriteF64(arr.At(i, 0), float64(it*1000+i))
				}
			})
			w.Phase(2, func() {
				for k := 0; k < 40; k++ {
					w.ReadF64(arr.At(rng.Intn(arr.N), 0))
				}
			})
			// Occasional migratory writes outside the owner's range.
			w.Phase(3, func() {
				if w.ID == it%6 {
					for k := 0; k < 8; k++ {
						i := (lo + 17*k + it) % arr.N
						w.AtomicAddF64(arr.At(i, 0), 1)
					}
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInvariantsHoldStache(t *testing.T) {
	for _, bs := range []int{32, 128} {
		m := runRandom(t, rt.ProtoStache, 11, bs)
		if vs := Machine(m); len(vs) > 0 {
			t.Fatalf("bs=%d:\n%s", bs, Report(vs))
		}
	}
}

func TestInvariantsHoldPredictive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		m := runRandom(t, rt.ProtoPredictive, seed, 32)
		if vs := Machine(m); len(vs) > 0 {
			t.Fatalf("seed %d:\n%s", seed, Report(vs))
		}
	}
}

func TestCheckerDetectsCorruption(t *testing.T) {
	m := runRandom(t, rt.ProtoStache, 5, 32)
	// Corrupt: force a non-sharer's tag to ReadOnly behind the
	// directory's back.
	var victim memory.Block
	found := false
	for _, home := range m.Nodes {
		if found {
			break
		}
		reg := m.AS.Regions()[0]
		for idx := int64(0); idx < reg.NumBlocks(); idx++ {
			b := m.AS.BlockOf(reg.Addr(idx * int64(m.Cfg.BlockSize)))
			e := home.Dir.Lookup(b)
			if e == nil {
				continue
			}
			// Pick any entry; corrupt a node that should be Invalid.
			for _, n := range m.Nodes {
				if n.ID == home.ID || e.Sharers.Has(n.ID) || e.Owner == n.ID {
					continue
				}
				l := n.Store.Ensure(b)
				l.Tag = memory.ReadOnly
				victim = b
				found = true
				break
			}
			if found {
				break
			}
		}
	}
	if !found {
		t.Skip("no directory entries to corrupt")
	}
	vs := Machine(m)
	if len(vs) == 0 {
		t.Fatalf("checker missed corruption of block %#x", uint64(victim))
	}
}

func TestUpdateProtocolExemptFromValueCheck(t *testing.T) {
	// Under the write-update protocol, stale sharers are by design; the
	// checker must not flag them as divergence.
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoUpdate})
	arr := m.NewArray1D("a", 2, 1, true)
	err := m.Run(func(w *rt.Worker) {
		if w.ID == 1 {
			w.ReadF64(arr.At(0, 0)) // become a sharer
		}
		w.Barrier()
		if w.ID == 0 {
			w.WriteF64(arr.At(0, 0), 42) // local write; no push
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range Machine(m) {
		t.Fatalf("update run flagged: %s", v)
	}
}

func TestViolationCarriesTraceEvents(t *testing.T) {
	// With a trace ring attached, a violation must carry the tail of the
	// protocol event log for the offending block's home and any
	// implicated remote nodes.
	m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoStache, Trace: 128})
	arr := m.NewArray1D("a", 8, 1, false)
	err := m.Run(func(w *rt.Worker) {
		if w.ID == 1 {
			w.ReadF64(arr.At(0, 0)) // remote read: traffic involving node 0 and 1
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt node 1's copy tag behind the directory's back.
	b := m.AS.BlockOf(arr.At(0, 0))
	home := m.AS.HomeOf(b)
	e := m.Nodes[home].Dir.Lookup(b)
	if e == nil {
		t.Fatal("no directory entry for the read block")
	}
	l := m.Nodes[1].Store.Ensure(b)
	l.Tag = memory.ReadWrite // sharer claiming writability
	vs := Machine(m)
	if len(vs) == 0 {
		t.Fatal("checker missed the corruption")
	}
	found := false
	for _, v := range vs {
		if len(v.Events) == 0 {
			continue
		}
		found = true
		for _, ev := range v.Events {
			if ev.Node != home && ev.Node != 1 {
				t.Fatalf("event for unimplicated node %d: %v", ev.Node, ev)
			}
		}
		s := v.String()
		if !strings.Contains(s, "trace events") {
			t.Fatalf("violation string lacks trace context:\n%s", s)
		}
	}
	if !found {
		t.Fatal("no violation carried trace events despite an attached ring")
	}
}

func TestViolationNoRingNoEvents(t *testing.T) {
	m := runRandom(t, rt.ProtoStache, 5, 32)
	if m.Ring != nil {
		t.Fatal("runRandom unexpectedly attached a ring")
	}
	// Corrupting without a ring must still produce violations, just
	// without event context (and without panicking).
	reg := m.AS.Regions()[0]
	b := m.AS.BlockOf(reg.Addr(0))
	l := m.Nodes[(m.AS.HomeOf(b)+1)%len(m.Nodes)].Store.Ensure(b)
	l.Tag = memory.ReadOnly
	for _, v := range Machine(m) {
		if len(v.Events) != 0 {
			t.Fatalf("events attached without a ring: %+v", v)
		}
	}
}
