// Package presto is the public facade of this repository: a Go
// reproduction of "Compiler-directed Shared-Memory Communication for
// Iterative Parallel Applications" (Viswanathan & Larus, Supercomputing
// 1996).
//
// The package re-exports the pieces a user composes:
//
//   - a simulated fine-grain DSM machine (Config/New/Machine/Worker) with
//     selectable coherence protocols — Stache write-invalidate, the
//     paper's predictive protocol, and a write-update baseline;
//   - the cstar (C**-subset) compiler pipeline (Compile) that summarizes
//     parallel functions, runs the reaching-unstructured-accesses
//     analysis, and places pre-send directives;
//   - an interpreter (Execute) that runs compiled programs on the
//     machine, letting the compiler's directives drive the protocol; and
//   - the three paper applications and the experiment registry that
//     regenerates every table and figure.
package presto

import (
	"presto/internal/apps/adaptive"
	"presto/internal/apps/barnes"
	"presto/internal/apps/unstructured"
	"presto/internal/apps/water"
	"presto/internal/check"
	"presto/internal/compiler"
	"presto/internal/harness"
	"presto/internal/interp"
	"presto/internal/lang"
	"presto/internal/rt"
)

// Machine construction and SPMD programming.
type (
	// Config selects node count, cache-block size, protocol and cost
	// model for one simulated machine.
	Config = rt.Config
	// Machine is a simulated 32-node-class DSM machine.
	Machine = rt.Machine
	// Worker is one node's view of a running SPMD program.
	Worker = rt.Worker
	// Breakdown is the paper's three-way execution-time split.
	Breakdown = rt.Breakdown
	// Counters aggregates protocol event counts.
	Counters = rt.Counters
)

// Protocol selectors.
const (
	// Stache is the default write-invalidate protocol (unoptimized).
	Stache = rt.ProtoStache
	// Predictive is the paper's predictive protocol (optimized).
	Predictive = rt.ProtoPredictive
	// Update is the write-update baseline protocol.
	Update = rt.ProtoUpdate
)

// NewMachine builds a machine; allocate aggregates, then call Run once.
func NewMachine(cfg Config) *Machine { return rt.New(cfg) }

// CheckCoherence audits protocol invariants over a finished machine and
// returns human-readable violations (empty means coherent).
func CheckCoherence(m *Machine) []string {
	var out []string
	for _, v := range check.Machine(m) {
		out = append(out, v.String())
	}
	return out
}

// Compiler pipeline.
type (
	// Program is a parsed cstar program.
	Program = lang.Program
	// Analysis is the compiler's placement analysis of a program.
	Analysis = compiler.Analysis
)

// Compile parses and analyzes cstar source, returning the analysis whose
// Report method renders the Figure-4-style annotated CFG.
func Compile(src string) (*Analysis, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return compiler.Analyze(prog)
}

// ExecuteOptions configures an interpreted run.
type ExecuteOptions = interp.Options

// ExecuteResult is an interpreted run's outcome.
type ExecuteResult = interp.Result

// Execute runs a compiled program on a simulated machine, with the
// compiler's directives driving the predictive protocol.
func Execute(a *Analysis, opt ExecuteOptions) (*ExecuteResult, error) {
	return interp.Run(a, opt)
}

// Applications (paper §5).
type (
	// AdaptiveConfig configures the structured adaptive mesh benchmark.
	AdaptiveConfig = adaptive.Config
	// AdaptiveResult is an Adaptive run's outcome.
	AdaptiveResult = adaptive.Result
	// BarnesConfig configures the Barnes-Hut N-body benchmark.
	BarnesConfig = barnes.Config
	// BarnesResult is a Barnes run's outcome.
	BarnesResult = barnes.Result
	// WaterConfig configures the molecular-dynamics benchmark.
	WaterConfig = water.Config
	// WaterResult is a Water run's outcome.
	WaterResult = water.Result
	// UnstructuredConfig configures the irregular bipartite-mesh kernel
	// (paper Figure 3) used for the inspector-executor comparison (§2).
	UnstructuredConfig = unstructured.Config
	// UnstructuredResult is an unstructured run's outcome.
	UnstructuredResult = unstructured.Result
)

// Unstructured-kernel strategies.
const (
	// PlainStrategy runs the kernel with no optimization.
	PlainStrategy = unstructured.Plain
	// PredictiveStrategy runs it on the predictive protocol.
	PredictiveStrategy = unstructured.Predictive
	// InspectorStrategy runs it with CHAOS-style inspection and bulk
	// gather execution.
	InspectorStrategy = unstructured.InspectorExecutor
)

// RunAdaptive executes the Adaptive benchmark.
func RunAdaptive(cfg AdaptiveConfig) (*AdaptiveResult, error) { return adaptive.Run(cfg) }

// RunBarnes executes the Barnes benchmark.
func RunBarnes(cfg BarnesConfig) (*BarnesResult, error) { return barnes.Run(cfg) }

// RunWater executes the Water benchmark.
func RunWater(cfg WaterConfig) (*WaterResult, error) { return water.Run(cfg) }

// RunUnstructured executes the irregular bipartite-mesh kernel.
func RunUnstructured(cfg UnstructuredConfig) (*UnstructuredResult, error) {
	return unstructured.Run(cfg)
}

// Experiments.
type (
	// Experiment is one registered paper artifact (table/figure).
	Experiment = harness.Experiment
	// ExperimentResult holds an experiment's rows and derived notes.
	ExperimentResult = harness.Result
	// Scale selects quick (CI) or paper workload sizes.
	Scale = harness.Scale
	// ExperimentOptions selects the workload scale and kernel engine for
	// an experiment run.
	ExperimentOptions = harness.Options
)

// Scales.
const (
	// QuickScale runs CI-sized workloads.
	QuickScale = harness.Quick
	// PaperScale runs the paper's Table-1 workload sizes.
	PaperScale = harness.Paper
)

// Experiments returns every registered paper artifact, sorted by ID.
func Experiments() []Experiment { return harness.All() }

// ExperimentByID looks up one artifact ("table1", "figure5", ...).
func ExperimentByID(id string) (Experiment, bool) { return harness.ByID(id) }

// RunExperiment executes one artifact with the given options.
func RunExperiment(e Experiment, o ExperimentOptions) (*ExperimentResult, error) {
	return harness.RunExperiment(e, o)
}
