// Benchmarks regenerating the paper's tables and figures, one per
// artifact. Each benchmark runs the corresponding harness experiment and
// reports the simulated machine's metrics alongside Go's wall-clock
// numbers:
//
//	vsec/op        virtual execution time of the headline version
//	speedup        the paper's headline ratio for that figure
//
// By default the benchmarks run the CI-sized (quick) workloads; set
// PRESTO_SCALE=paper to run the paper's Table 1 sizes (32 simulated
// nodes; several minutes). PRESTO_ENGINE=parallel runs them on the
// kernel's conservative parallel engine (identical results, different
// wall clock).
package presto_test

import (
	"os"
	"testing"

	"presto"
	"presto/internal/harness"
	"presto/internal/network"
	"presto/internal/rt"
	"presto/internal/sim"
)

func benchScale() harness.Scale {
	return harness.ParseScale(os.Getenv("PRESTO_SCALE"))
}

func benchOptions() harness.Options {
	return harness.Options{
		Scale:  benchScale(),
		Engine: rt.EngineKind(os.Getenv("PRESTO_ENGINE")),
	}
}

func runExperiment(b *testing.B, id string) *harness.Result {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var res *harness.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = harness.RunExperiment(e, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkTable1Workloads runs all three applications at the selected
// scale under the predictive protocol (the paper's workload table).
func BenchmarkTable1Workloads(b *testing.B) {
	res := runExperiment(b, "table1")
	_ = res
	opts := benchOptions()
	var total sim.Time
	for i := 0; i < 1; i++ { // workloads themselves (once per bench run)
		for _, id := range []string{"figure7"} {
			e, _ := harness.ByID(id)
			r, err := harness.RunExperiment(e, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, row := range r.Rows {
				total += row.B.Elapsed
			}
		}
	}
	b.ReportMetric(total.Seconds(), "vsec")
}

// BenchmarkFigure4Compiler measures the compiler pipeline on the Barnes
// source (parse, summaries, CFG, data-flow, placement).
func BenchmarkFigure4Compiler(b *testing.B) {
	src, err := os.ReadFile("testdata/barnes.cstar")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := presto.Compile(string(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Adaptive regenerates the Adaptive comparison and
// reports the best-opt vs best-unopt speedup (paper: 1.56x).
func BenchmarkFigure5Adaptive(b *testing.B) {
	res := runExperiment(b, "figure5")
	bestOpt, _ := res.Best("C** opt")
	bestUnopt, _ := res.Best("C** unopt")
	b.ReportMetric(bestOpt.B.Elapsed.Seconds(), "vsec/op")
	b.ReportMetric(float64(bestUnopt.Total())/float64(bestOpt.Total()), "speedup")
}

// BenchmarkFigure6Barnes regenerates the Barnes five-version comparison
// and reports the paper's crossover ratio (unopt at 1024B vs opt at 32B).
func BenchmarkFigure6Barnes(b *testing.B) {
	res := runExperiment(b, "figure6")
	o32, _ := res.Find("C** opt (32)")
	u1024, _ := res.Find("C** unopt (1024)")
	b.ReportMetric(u1024.B.Elapsed.Seconds(), "vsec/op")
	b.ReportMetric(float64(o32.Total())/float64(u1024.Total()), "crossover")
}

// BenchmarkFigure7Water regenerates the Water three-version comparison
// and reports opt-vs-unopt (paper: ~1.05x) and opt-vs-Splash (paper:
// ~1.2x) speedups.
func BenchmarkFigure7Water(b *testing.B) {
	res := runExperiment(b, "figure7")
	opt, _ := res.Best("C** opt")
	unopt, _ := res.Best("C** unopt")
	splash, _ := res.Best("Splash")
	b.ReportMetric(opt.B.Elapsed.Seconds(), "vsec/op")
	b.ReportMetric(float64(unopt.Total())/float64(opt.Total()), "speedup")
	b.ReportMetric(float64(splash.Total())/float64(opt.Total()), "vs-splash")
}

// BenchmarkSweepBlockSizes regenerates the §5.4 block-size sweep.
func BenchmarkSweepBlockSizes(b *testing.B) {
	res := runExperiment(b, "sweep")
	var u32, o32 harness.Row
	for _, r := range res.Rows {
		if r.BlockSize == 32 {
			if r.Label == "water unopt (32)" {
				u32 = r
			} else {
				o32 = r
			}
		}
	}
	b.ReportMetric(float64(u32.B.RemoteWait)/float64(o32.B.RemoteWait+1), "waitratio32")
}

// BenchmarkAblateCoalescing measures the pre-send with and without bulk
// coalescing (paper §3.4).
func BenchmarkAblateCoalescing(b *testing.B) {
	res := runExperiment(b, "ablate-coalesce")
	on, off := res.Rows[0], res.Rows[1]
	b.ReportMetric(float64(off.B.Presend)/float64(on.B.Presend), "presend-saving")
}

// BenchmarkAblateConflicts measures the conflict-anticipation extension.
func BenchmarkAblateConflicts(b *testing.B) {
	res := runExperiment(b, "ablate-conflicts")
	b.ReportMetric(float64(res.Rows[0].C.Conflicts), "conflicts")
}

// BenchmarkAblateFlush measures schedule flushing under deletions.
func BenchmarkAblateFlush(b *testing.B) {
	res := runExperiment(b, "ablate-flush")
	never, flush := res.Rows[0], res.Rows[1]
	b.ReportMetric(float64(never.C.PresendsSent)/float64(flush.C.PresendsSent+1), "stale-presends")
}

// BenchmarkInspectorExecutor regenerates the §2 related-work comparison
// (predictive protocol vs CHAOS-style inspector-executor) and reports the
// adaptive-mesh total ratio.
func BenchmarkInspectorExecutor(b *testing.B) {
	res := runExperiment(b, "inspector")
	pred, _ := res.Find("adaptive mesh, predictive")
	ie, _ := res.Find("adaptive mesh, inspector")
	b.ReportMetric(pred.B.Elapsed.Seconds(), "vsec/op")
	b.ReportMetric(float64(pred.Total())/float64(ie.Total()), "vs-inspector")
}

// BenchmarkPlatforms regenerates the §5.4 platform tradeoff and reports
// the opt-vs-unopt speedup on each interconnect.
func BenchmarkPlatforms(b *testing.B) {
	res := runExperiment(b, "platforms")
	speedup := func(tag string) float64 {
		u, _ := res.Find(tag + " unopt")
		o, _ := res.Find(tag + " opt")
		return float64(u.Total()) / float64(o.Total())
	}
	b.ReportMetric(speedup("NOW"), "now-speedup")
	b.ReportMetric(speedup("CM-5"), "cm5-speedup")
	b.ReportMetric(speedup("hw-DSM"), "hwdsm-speedup")
}

// BenchmarkRemoteMiss measures the simulator's cost of one remote read
// miss end to end (protocol handlers, messages, virtual-time machinery).
func BenchmarkRemoteMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Net: network.CM5()})
		arr := m.NewArray1D("a", 128, 1, false)
		if err := m.Run(func(w *rt.Worker) {
			if w.ID == 1 {
				for k := 0; k < 64; k++ {
					w.ReadF64(arr.At(k, 0))
				}
			}
			w.Barrier()
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPresendWalk measures the pre-send phase itself: schedule walk,
// coalescing and bulk transfer of 256 blocks.
func BenchmarkPresendWalk(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := rt.New(rt.Config{Nodes: 2, BlockSize: 32, Protocol: rt.ProtoPredictive})
		arr := m.NewArray1D("a", 1024, 1, false)
		if err := m.Run(func(w *rt.Worker) {
			for it := 0; it < 3; it++ {
				w.Phase(1, func() {
					if w.ID == 0 {
						for k := 0; k < 512; k++ {
							w.WriteF64(arr.At(k, 0), float64(it))
						}
					}
				})
				w.Phase(2, func() {
					if w.ID == 1 {
						for k := 0; k < 512; k++ {
							w.ReadF64(arr.At(k, 0))
						}
					}
				})
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
}
