// Command dsmrun executes one application/protocol/block-size
// configuration on the simulated DSM machine and prints the paper-style
// execution-time breakdown plus protocol counters.
//
// Usage:
//
//	dsmrun -app adaptive|barnes|water [-protocol stache|predictive|update]
//	       [-nodes N] [-block B] [-spmd] [-splash] [-size N] [-iters N]
package main

import (
	"flag"
	"fmt"
	"os"

	"presto/internal/apps/adaptive"
	"presto/internal/apps/barnes"
	"presto/internal/apps/water"
	"presto/internal/rt"
)

func main() {
	app := flag.String("app", "", "application: adaptive, barnes or water")
	protocol := flag.String("protocol", "stache", "coherence protocol")
	nodes := flag.Int("nodes", 32, "simulated node count")
	block := flag.Int("block", 32, "cache block size in bytes")
	size := flag.Int("size", 0, "problem size (mesh edge / bodies / molecules); 0 = paper size")
	iters := flag.Int("iters", 0, "iterations; 0 = paper count")
	spmd := flag.Bool("spmd", false, "barnes: hand-optimized SPMD baseline (use -protocol update)")
	splash := flag.Bool("splash", false, "water: Splash-2 shared-memory variant")
	flag.Parse()

	mc := rt.Config{Nodes: *nodes, BlockSize: *block, Protocol: rt.ProtocolKind(*protocol)}
	var b rt.Breakdown
	var c rt.Counters
	var extra string
	var err error
	switch *app {
	case "adaptive":
		var r *adaptive.Result
		r, err = adaptive.Run(adaptive.Config{Machine: mc, Size: *size, Iters: *iters})
		if err == nil {
			b, c = r.Breakdown, r.Counters
			extra = fmt.Sprintf("refined cells: %d, checksum %.4f", r.Refined, r.Checksum)
		}
	case "barnes":
		var r *barnes.Result
		r, err = barnes.Run(barnes.Config{Machine: mc, Bodies: *size, Iters: *iters, SPMD: *spmd})
		if err == nil {
			b, c = r.Breakdown, r.Counters
			extra = fmt.Sprintf("tree cells: %d, checksum %.4f", r.Cells, r.Checksum)
		}
	case "water":
		var r *water.Result
		r, err = water.Run(water.Config{Machine: mc, Molecules: *size, Steps: *iters, Splash: *splash})
		if err == nil {
			b, c = r.Breakdown, r.Counters
			extra = fmt.Sprintf("energy checksum %.4f", r.Energy)
		}
	default:
		fmt.Fprintln(os.Stderr, "dsmrun: -app must be adaptive, barnes or water")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmrun:", err)
		os.Exit(1)
	}

	fmt.Printf("%s on %d nodes, %dB blocks, %s protocol\n", *app, *nodes, *block, *protocol)
	fmt.Printf("  execution time    %v\n", b.Elapsed)
	fmt.Printf("  remote-data wait  %v\n", b.RemoteWait)
	fmt.Printf("  pre-send          %v\n", b.Presend)
	fmt.Printf("  compute+synch     %v (compute %v, synch %v)\n", b.ComputeSynch(), b.Compute, b.Sync)
	fmt.Printf("  faults            %d read, %d write\n", c.ReadFaults, c.WriteFaults)
	fmt.Printf("  messages          %d (%.2f MB)\n", c.MsgsSent, float64(c.BytesSent)/1e6)
	fmt.Printf("  pre-sends         %d blocks (%d bulk messages, %d skipped, %d conflicts)\n",
		c.PresendsSent, c.BulkMsgs, c.PresendsSkipped, c.Conflicts)
	fmt.Printf("  %s\n", extra)
}
