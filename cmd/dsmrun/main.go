// Command dsmrun executes one application/protocol/block-size
// configuration on the simulated DSM machine and prints the paper-style
// execution-time breakdown plus protocol counters.
//
// Usage:
//
//	dsmrun -app adaptive|barnes|water [-protocol stache|predictive|update]
//	       [-nodes N] [-block B] [-net <preset>] [-aggregate] [-spmd] [-splash] [-size N] [-iters N]
//	       [-metrics out.json] [-metrics-out out.json]
//	       [-profile] [-profile-out profile.json] [-predict]
//	       [-trace-out t.json] [-trace-format chrome|jsonl]
//	       [-engine serial|parallel] [-workers N] [-sched wheel|heap]
//	       [-cpuprofile f] [-memprofile f]
//
// -metrics writes the machine's full metrics report (breakdown, per-phase
// stats, protocol counters, histograms) as JSON; "-" selects stdout.
// -metrics-out is an alias for -metrics.
// -profile enables the causal profiler: every wake edge is recorded, and
// after the run dsmrun prints the exact time-attribution report (every
// simulated nanosecond of every node classified into compute / transit /
// occupancy / service / barrier / stall / presend / idle, validated to
// sum to the node's total) plus the critical path. -profile-out writes
// the same data as a stable profile.json artifact. With a chrome trace,
// -profile also overlays the critical path as a dedicated lane with flow
// arrows. Simulated results are identical with or without -profile.
// -predict cross-checks the analytical fast path (internal/predict)
// against the run: a second, recorded simulation at the predictor's 32B
// calibration block size is distilled into a calibration, the requested
// block size is predicted analytically, and the predicted-vs-simulated
// error table prints after the breakdown (-block must be 32<<k, k<=6).
// -trace-out streams the protocol event trace to a file: -trace-format
// chrome (default) produces a Chrome trace_event file for
// chrome://tracing or https://ui.perfetto.dev; jsonl produces one JSON
// object per event. Virtual time makes both byte-identical across
// identical runs.
//
// -net accepts every topology preset (network.Grammars lists them):
// flat machines (cm5, now, hwdsm), two- and three-level clusters
// (cluster:<groups>x<cores>, cluster:<groups>x<subgroups>x<cores>),
// 2D meshes (mesh:<w>x<h>) and fat trees (fattree:<levels>).
// -aggregate enables node-leader message aggregation on hierarchical
// machines: cross-group bulk traffic bound for one remote group is
// coalesced into a single leader-to-leader message. Timing changes;
// final memory contents do not.
//
// -engine parallel runs the simulation on the kernel's conservative
// parallel engine; every output (breakdown, metrics, traces) is
// byte-identical to -engine serial — only wall-clock time changes.
// -sched heap swaps the kernel's timing-wheel event scheduler for the
// binary-heap reference (also byte-identical; differential testing).
// -cpuprofile/-memprofile write pprof profiles of the simulator itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"presto/internal/apps/adaptive"
	"presto/internal/apps/barnes"
	"presto/internal/apps/water"
	"presto/internal/causal"
	"presto/internal/network"
	"presto/internal/predict"
	"presto/internal/prof"
	"presto/internal/rt"
	"presto/internal/sim"
	"presto/internal/trace"
)

func main() {
	app := flag.String("app", "", "application: adaptive, barnes or water")
	protocol := flag.String("protocol", "stache", "coherence protocol")
	nodes := flag.Int("nodes", 32, "simulated node count")
	block := flag.Int("block", 32, "cache block size in bytes")
	netName := flag.String("net", "cm5", "interconnect preset: "+network.Grammars())
	aggregate := flag.Bool("aggregate", false, "enable node-leader message aggregation (hierarchical -net presets)")
	size := flag.Int("size", 0, "problem size (mesh edge / bodies / molecules); 0 = paper size")
	iters := flag.Int("iters", 0, "iterations; 0 = paper count")
	spmd := flag.Bool("spmd", false, "barnes: hand-optimized SPMD baseline (use -protocol update)")
	splash := flag.Bool("splash", false, "water: Splash-2 shared-memory variant")
	metricsOut := flag.String("metrics", "", "write the metrics report as JSON to this file (\"-\" = stdout)")
	metricsOut2 := flag.String("metrics-out", "", "alias for -metrics: write the metrics report (including the full metrics registry) as JSON")
	profile := flag.Bool("profile", false, "enable the causal profiler and print the critical-path/attribution report")
	predictFlag := flag.Bool("predict", false, "validate the analytical predictor against this run: record a 32B calibration of the same configuration, predict this block size, print the predicted-vs-simulated error table")
	profileOut := flag.String("profile-out", "", "with -profile: write the profile.json artifact to this file (\"-\" = stdout)")
	traceOut := flag.String("trace-out", "", "write the protocol event trace to this file")
	traceFormat := flag.String("trace-format", "chrome", "trace format: chrome or jsonl")
	engine := flag.String("engine", "serial", "kernel engine: serial or parallel")
	workers := flag.Int("workers", 0, "parallel-engine workers (0 = GOMAXPROCS)")
	sched := flag.String("sched", "wheel", "kernel event scheduler: wheel or heap")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf = prof.Start(*cpuprofile, *memprofile)
	defer stopProf()

	netParams, err := network.Preset(*netName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsmrun: %v\n", err)
		os.Exit(2)
	}
	if err := netParams.Validate(); err != nil {
		fatal(err)
	}

	mc := rt.Config{
		Nodes: *nodes, BlockSize: *block, Protocol: rt.ProtocolKind(*protocol),
		Net: netParams, Engine: rt.EngineKind(*engine), Workers: *workers,
		Sched: rt.SchedKind(*sched), Profile: *profile, Aggregate: *aggregate,
	}
	if *metricsOut == "" {
		*metricsOut = *metricsOut2
	}

	var traceFile *os.File
	var chrome *trace.Chrome
	var jsonl *trace.JSONL
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		switch *traceFormat {
		case "chrome":
			chrome = trace.NewChrome()
			mc.Sink = chrome
		case "jsonl":
			jsonl = trace.NewJSONL(f)
			mc.Sink = jsonl
		default:
			fmt.Fprintf(os.Stderr, "dsmrun: unknown -trace-format %q (want chrome or jsonl)\n", *traceFormat)
			os.Exit(2)
		}
	}

	var b rt.Breakdown
	var c rt.Counters
	var m *rt.Machine
	var extra string
	switch *app {
	case "adaptive":
		var r *adaptive.Result
		r, err = adaptive.Run(adaptive.Config{Machine: mc, Size: *size, Iters: *iters})
		if err == nil {
			b, c, m = r.Breakdown, r.Counters, r.Machine
			extra = fmt.Sprintf("refined cells: %d, checksum %.4f", r.Refined, r.Checksum)
		}
	case "barnes":
		var r *barnes.Result
		r, err = barnes.Run(barnes.Config{Machine: mc, Bodies: *size, Iters: *iters, SPMD: *spmd})
		if err == nil {
			b, c, m = r.Breakdown, r.Counters, r.Machine
			extra = fmt.Sprintf("tree cells: %d, checksum %.4f", r.Cells, r.Checksum)
		}
	case "water":
		var r *water.Result
		r, err = water.Run(water.Config{Machine: mc, Molecules: *size, Steps: *iters, Splash: *splash})
		if err == nil {
			b, c, m = r.Breakdown, r.Counters, r.Machine
			extra = fmt.Sprintf("energy checksum %.4f", r.Energy)
		}
	default:
		fmt.Fprintln(os.Stderr, "dsmrun: -app must be adaptive, barnes or water")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	var prof *causal.Profile
	if *profile && m != nil {
		prof, err = m.Profile(*app)
		if err != nil {
			fatal(err)
		}
		// The attribution invariant is load-bearing: refuse to emit a
		// profile whose buckets do not sum to the simulated time.
		if err := prof.Validate(); err != nil {
			fatal(err)
		}
		if chrome != nil {
			path, err := m.CriticalPath()
			if err != nil {
				fatal(err)
			}
			chrome.SetCriticalPath(rt.PathOverlay(path))
		}
	}

	if traceFile != nil {
		switch {
		case chrome != nil:
			if err := chrome.Write(traceFile); err != nil {
				fatal(err)
			}
		case jsonl != nil:
			if err := jsonl.Close(); err != nil {
				fatal(err)
			}
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
	}

	if *metricsOut != "" && m != nil {
		out := os.Stdout
		if *metricsOut != "-" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			out = f
		}
		rep := m.Report()
		rep.Exec = m.ExecInfo()
		if err := writeJSON(out, rep); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%s on %d nodes, %dB blocks, %s protocol\n", *app, *nodes, *block, *protocol)
	if m != nil && mc.Engine == rt.EngineParallel {
		ei := m.ExecInfo()
		fmt.Printf("  engine            parallel: %d workers over %d lanes, %s lookahead\n",
			ei.Workers, ei.Lanes, ei.Lookahead)
	}
	fmt.Printf("  execution time    %v\n", b.Elapsed)
	fmt.Printf("  remote-data wait  %v\n", b.RemoteWait)
	fmt.Printf("  pre-send          %v\n", b.Presend)
	fmt.Printf("  compute+synch     %v (compute %v, synch %v)\n", b.ComputeSynch(), b.Compute, b.Sync)
	fmt.Printf("  faults            %d read, %d write\n", c.ReadFaults, c.WriteFaults)
	fmt.Printf("  messages          %d (%.2f MB)\n", c.MsgsSent, float64(c.BytesSent)/1e6)
	if c.AggMsgs > 0 {
		fmt.Printf("  aggregates        %d leader-to-leader (%d entries, %d cross-group msgs)\n",
			c.AggMsgs, c.AggEntriesOut, c.CrossMsgs)
	}
	fmt.Printf("  pre-sends         %d blocks (%d bulk messages, %d skipped, %d conflicts)\n",
		c.PresendsSent, c.BulkMsgs, c.PresendsSkipped, c.Conflicts)
	fmt.Printf("  %s\n", extra)
	if m != nil {
		printPhases(m)
	}

	if prof != nil {
		fmt.Println()
		prof.Render(os.Stdout)
		if *profileOut != "" {
			out := os.Stdout
			if *profileOut != "-" {
				f, err := os.Create(*profileOut)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				out = f
			}
			if err := writeJSON(out, prof); err != nil {
				fatal(err)
			}
		}
	}

	if *predictFlag {
		if err := predictReport(*app, mc, *size, *iters, *spmd, *splash, b); err != nil {
			fatal(err)
		}
	}
}

// predictReport validates the analytical fast path against the run that
// just finished: it records a calibration of the same configuration at
// the predictor's 32B base block size, extrapolates to the requested
// block size, and prints the error table plus the predicted breakdown.
func predictReport(app string, mc rt.Config, size, iters int, spmd, splash bool, simulated rt.Breakdown) error {
	cc := mc
	cc.BlockSize = 32
	cc.Profile, cc.Record = true, true
	cc.Sink = nil

	var m *rt.Machine
	var err error
	switch app {
	case "adaptive":
		var r *adaptive.Result
		if r, err = adaptive.Run(adaptive.Config{Machine: cc, Size: size, Iters: iters}); err == nil {
			m = r.Machine
		}
	case "barnes":
		var r *barnes.Result
		if r, err = barnes.Run(barnes.Config{Machine: cc, Bodies: size, Iters: iters, SPMD: spmd}); err == nil {
			m = r.Machine
		}
	case "water":
		var r *water.Result
		if r, err = water.Run(water.Config{Machine: cc, Molecules: size, Steps: iters, Splash: splash}); err == nil {
			m = r.Machine
		}
	}
	if err != nil {
		return fmt.Errorf("predict calibration: %w", err)
	}
	cal, err := predict.Calibrate(m, app)
	if err != nil {
		return err
	}
	pr, err := cal.Predict(predict.Target{BlockSize: mc.BlockSize})
	if err != nil {
		return fmt.Errorf("predicting %dB from the %dB calibration: %w", mc.BlockSize, cc.BlockSize, err)
	}

	fmt.Println()
	fmt.Printf("analytical predictor (calibrated at %dB, %s protocol):\n", cc.BlockSize, mc.Protocol)
	fmt.Printf("  predicted time    %v (simulated %v)\n", sim.Time(pr.ElapsedNS), simulated.Elapsed)
	fmt.Printf("  remote-data wait  %v (simulated %v)\n", pr.Breakdown.RemoteWait, simulated.RemoteWait)
	fmt.Printf("  pre-send          %v (simulated %v)\n", pr.Breakdown.Presend, simulated.Presend)
	var table predict.ErrorTable
	table.Add(app, fmt.Sprintf("%s/%s", app, mc.Protocol), mc.BlockSize,
		pr.ElapsedNS, int64(simulated.Elapsed))
	table.Render(os.Stdout)
	return nil
}

// printPhases renders the per-phase breakdown when phases were recorded.
func printPhases(m *rt.Machine) {
	phases := m.PhaseBreakdown()
	if len(phases) == 0 {
		return
	}
	fmt.Printf("  per-phase (per-node averages):\n")
	for _, p := range phases {
		hit := ""
		if p.PresendsIn > 0 {
			hit = fmt.Sprintf(", coverage %.1f%%, accuracy %.1f%%", 100*p.Coverage(), 100*p.Accuracy())
		}
		fmt.Printf("    %-14s iters %-4d remote-wait %-12v presend %-12v faults %d%s\n",
			p.Name, p.Iters, sim.Time(p.RemoteWaitNS), sim.Time(p.PresendNS), p.Faults(), hit)
	}
}

// writeJSON renders v with stable two-space indentation.
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// stopProf flushes -cpuprofile/-memprofile output; fatal calls it so
// profiles survive error exits.
var stopProf = func() {}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dsmrun:", err)
	stopProf()
	os.Exit(1)
}
