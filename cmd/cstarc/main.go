// Command cstarc is the cstar (C**-subset) compiler driver: it parses a
// program, prints the parallel-function access summaries, the annotated
// control-flow graph of main, and the pre-send directive placement — the
// paper's Figure 4, regenerated for any input program.
//
// Usage:
//
//	cstarc [-format] [-run] [-nodes N] [-block B] [-protocol stache|predictive] file.cstar
//
// -format pretty-prints the program instead of analyzing it. -run
// executes the compiled program on a simulated machine and reports the
// execution-time breakdown.
package main

import (
	"flag"
	"fmt"
	"os"

	"presto/internal/compiler"
	"presto/internal/interp"
	"presto/internal/lang"
	"presto/internal/rt"
)

func main() {
	format := flag.Bool("format", false, "pretty-print the program and exit")
	run := flag.Bool("run", false, "execute the compiled program on the simulated machine")
	nodes := flag.Int("nodes", 16, "simulated node count for -run")
	block := flag.Int("block", 32, "cache block size in bytes for -run")
	protocol := flag.String("protocol", "predictive", "coherence protocol for -run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cstarc [flags] file.cstar")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := lang.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if *format {
		fmt.Print(lang.Format(prog))
		return
	}
	a, err := compiler.Analyze(prog)
	if err != nil {
		fatal(err)
	}
	fmt.Print(a.Report())

	if !*run {
		return
	}
	fmt.Println("\nExecuting on the simulated machine...")
	res, err := interp.Run(a, interp.Options{Machine: rt.Config{
		Nodes:     *nodes,
		BlockSize: *block,
		Protocol:  rt.ProtocolKind(*protocol),
	}})
	if err != nil {
		fatal(err)
	}
	b := res.Breakdown
	fmt.Printf("\nprotocol=%s nodes=%d block=%dB\n", *protocol, *nodes, *block)
	fmt.Printf("elapsed         %v\n", b.Elapsed)
	fmt.Printf("compute         %v\n", b.Compute)
	fmt.Printf("remote wait     %v\n", b.RemoteWait)
	fmt.Printf("pre-send        %v\n", b.Presend)
	fmt.Printf("synchronization %v\n", b.Sync)
	fmt.Printf("faults          %d read / %d write; pre-sends %d\n",
		res.Counters.ReadFaults, res.Counters.WriteFaults, res.Counters.PresendsSent)
	if len(res.Scalars) > 0 {
		fmt.Println("final scalars:")
		for k, v := range res.Scalars {
			fmt.Printf("  %s = %g\n", k, v)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstarc:", err)
	os.Exit(1)
}
