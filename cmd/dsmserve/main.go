// Command dsmserve is the simulation-as-a-service front end: it accepts
// batches of experiment specs (chaos seed bands, harness figure sweeps)
// over HTTP/JSON, schedules them on a worker pool, dedupes identical
// configurations through a content-addressed result cache — the
// simulator is deterministic, so the same spec always produces the same
// bytes — and streams results back incrementally as NDJSON.
//
// Start a server:
//
//	dsmserve -addr 127.0.0.1:8077 -workers 4
//
// Submit a 100-seed chaos band and stream verdicts:
//
//	curl -sN -X POST http://127.0.0.1:8077/v1/batch \
//	  -d '{"seed_range":{"start":1,"count":100,"scale":"quick"}}'
//
// Run a figure sweep through the service (byte-identical to the
// in-process harness):
//
//	curl -sN -X POST http://127.0.0.1:8077/v1/batch \
//	  -d '{"specs":[{"kind":"experiment","experiment":"figure5","scale":"quick"}]}'
//
// Look up a cached result, check health, read the pool counters:
//
//	curl -s http://127.0.0.1:8077/v1/spec/<hash>
//	curl -s http://127.0.0.1:8077/healthz
//	curl -s http://127.0.0.1:8077/metricsz
//
// SIGINT/SIGTERM drain gracefully: in-flight batches finish streaming,
// queued jobs complete, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"presto/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8077", "listen address")
		workers    = flag.Int("workers", 0, "pool workers (0 = GOMAXPROCS)")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "result cache byte budget (<0 = unbounded)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "per-job wall-clock bound (0 = none); overrunning jobs return structured errors")
		maxBatch   = flag.Int("max-batch", 100000, "max jobs per batch request")
		drainWait  = flag.Duration("drain-timeout", 5*time.Minute, "graceful-drain bound on SIGINT/SIGTERM")
	)
	flag.Parse()

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	svc := serve.NewService(serve.Config{
		Workers:    w,
		CacheBytes: *cacheBytes,
		JobTimeout: *jobTimeout,
	})
	front := serve.NewServer(svc)
	front.MaxBatch = *maxBatch

	srv := &http.Server{Addr: *addr, Handler: front.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dsmserve: listening on %s (%d workers)\n", *addr, w)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "dsmserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let active batch streams finish
	// (they wait on their queued jobs), then stop the pool.
	fmt.Fprintln(os.Stderr, "dsmserve: draining...")
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dsmserve: shutdown:", err)
	}
	svc.Close()
	fmt.Fprintln(os.Stderr, "dsmserve: drained")
}
