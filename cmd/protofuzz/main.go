// Command protofuzz drives the deterministic protocol chaos subsystem
// (internal/chaos): consecutive seeds derive synthetic workloads that
// run under every {stache, predictive} × {serial, parallel} combination
// with seeded interconnect jitter, cross-checked by a differential
// oracle. Failing seeds shrink to a minimal reproducer printed as a
// one-line command.
//
// Fuzz a seed range (CI smoke):
//
//	protofuzz -seeds 500 -scale quick
//
// Reproduce a shrunk failure:
//
//	protofuzz -repro -seed 17 -max-nodes 4 -max-phases 3
//
// Verify the oracle catches an injected protocol defect:
//
//	protofuzz -seeds 100 -mutate stache-skip-deferral -expect-fail
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"presto/internal/chaos"
)

func main() {
	var (
		seeds      = flag.Int("seeds", 50, "number of consecutive seeds to run")
		start      = flag.Int64("start", 1, "first seed")
		scale      = flag.String("scale", "quick", "derivation envelope: quick|long")
		seed       = flag.Int64("seed", -1, "run this single seed (overrides -seeds/-start)")
		repro      = flag.Bool("repro", false, "single-seed reproduction mode: print the full differential result (requires -seed)")
		maxNodes   = flag.Int("max-nodes", 0, "cap derived node count (0 = scale default)")
		maxPhases  = flag.Int("max-phases", 0, "cap derived phase count")
		maxIters   = flag.Int("max-iters", 0, "cap derived iteration count")
		maxBlocks  = flag.Int("max-blocks", 0, "cap derived shared element pool")
		mutate     = flag.String("mutate", "", "inject a named protocol defect (e.g. stache-skip-deferral)")
		jitter     = flag.Int("jitter", 0, "interconnect jitter pct: 0 = derive per seed, >0 force, <0 off")
		maxEvents  = flag.Int64("max-events", 0, "per-run simulation event budget (0 = default)")
		maxFail    = flag.Int("max-failures", 1, "stop after this many failing seeds")
		noShrink   = flag.Bool("no-shrink", false, "skip minimizing failing seeds")
		expectFail = flag.Bool("expect-fail", false, "invert the exit status: succeed only if a failure was found (mutation testing)")
		out        = flag.String("out", "", "directory to write failing-seed reproducer JSON files")
		quiet      = flag.Bool("q", false, "suppress per-seed progress")
	)
	flag.Parse()

	sc, err := chaos.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := chaos.Options{
		Seeds:       *seeds,
		Start:       *start,
		Scale:       sc,
		Caps:        chaos.Caps{Nodes: *maxNodes, Phases: *maxPhases, Iters: *maxIters, Blocks: *maxBlocks},
		Mutation:    *mutate,
		JitterPct:   *jitter,
		MaxEvents:   *maxEvents,
		MaxFailures: *maxFail,
		NoShrink:    *noShrink,
	}
	if !*quiet {
		o.Log = os.Stderr
	}
	if *seed >= 0 {
		o.Seeds, o.Start = 1, *seed
	}

	if *repro {
		if *seed < 0 {
			fmt.Fprintln(os.Stderr, "protofuzz: -repro requires -seed")
			os.Exit(2)
		}
		r := chaos.RunSeed(*seed, o)
		fmt.Print(r.Render())
		if r.Failed() {
			exit(*expectFail, true)
		}
		exit(*expectFail, false)
	}

	rep := chaos.Fuzz(o)
	if rep.Ok() {
		fmt.Printf("protofuzz: %d seeds clean (scale=%s start=%d)\n", rep.SeedsRun, sc, o.Start)
		exit(*expectFail, false)
	}
	for _, f := range rep.Failures {
		fmt.Printf("protofuzz: seed %d FAILED (%d oracle violations), minimal nodes=%d phases=%d iters=%d blocks=%d\n",
			f.Seed, len(f.Result.Failures), f.Min.Nodes, f.Min.Phases, f.Min.Iters, f.Min.Blocks)
		for _, msg := range f.MinResult.Failures {
			fmt.Printf("  %s\n", msg)
		}
		fmt.Printf("  repro: %s\n", f.Repro)
		if *out != "" {
			if err := writeReproducer(*out, f); err != nil {
				fmt.Fprintf(os.Stderr, "protofuzz: writing reproducer: %v\n", err)
			}
		}
	}
	fmt.Printf("protofuzz: %d/%d seeds failed\n", len(rep.Failures), rep.SeedsRun)
	exit(*expectFail, true)
}

// writeReproducer dumps one failure as JSON for CI artifact upload.
func writeReproducer(dir string, f chaos.Failure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.json", f.Seed))
	fmt.Printf("  reproducer: %s\n", path)
	return os.WriteFile(path, data, 0o644)
}

// exit maps (expectFail, failed) to the process status: normally
// failures are fatal; under -expect-fail a clean campaign is the error.
func exit(expectFail, failed bool) {
	switch {
	case expectFail && !failed:
		fmt.Fprintln(os.Stderr, "protofuzz: expected a failure but every seed passed")
		os.Exit(1)
	case !expectFail && failed:
		os.Exit(1)
	}
	os.Exit(0)
}
