// Command protofuzz drives the deterministic protocol chaos subsystem
// (internal/chaos): consecutive seeds derive synthetic workloads that
// run under every {stache, predictive} × {serial, parallel} combination
// with seeded interconnect jitter, cross-checked by a differential
// oracle. Failing seeds shrink to a minimal reproducer printed as a
// one-line command.
//
// Fuzz a seed range (CI smoke):
//
//	protofuzz -seeds 500 -scale quick
//
// Submit the band to a running dsmserve instead of simulating locally
// (the oracle runs server-side; repeated bands are served from the
// content-addressed cache):
//
//	protofuzz -server http://127.0.0.1:8077 -seeds 500
//
// Reproduce a shrunk failure:
//
//	protofuzz -repro -seed 17 -max-nodes 4 -max-phases 3
//
// Verify the oracle catches an injected protocol defect:
//
//	protofuzz -seeds 100 -mutate stache-skip-deferral -expect-fail
//
// -aggregate runs every combination with node-leader message
// aggregation enabled (a timing-visible no-op on seeds that derive flat
// interconnects); aggregation-layer mutations such as agg-drop-entry
// imply it. Shrunk reproducers of aggregated failures carry the flag.
//
// SIGINT interrupts a campaign gracefully: the seeds already run are
// reported, failing-seed artifacts (-out) are flushed, and the process
// exits 130.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"presto/internal/chaos"
	"presto/internal/serve"
)

func main() {
	var (
		seeds      = flag.Int("seeds", 50, "number of consecutive seeds to run")
		start      = flag.Int64("start", 1, "first seed")
		scale      = flag.String("scale", "quick", "derivation envelope: quick|long")
		seed       = flag.Int64("seed", -1, "run this single seed (overrides -seeds/-start)")
		repro      = flag.Bool("repro", false, "single-seed reproduction mode: print the full differential result (requires -seed)")
		maxNodes   = flag.Int("max-nodes", 0, "cap derived node count (0 = scale default)")
		maxPhases  = flag.Int("max-phases", 0, "cap derived phase count")
		maxIters   = flag.Int("max-iters", 0, "cap derived iteration count")
		maxBlocks  = flag.Int("max-blocks", 0, "cap derived shared element pool")
		mutate     = flag.String("mutate", "", "inject a named protocol defect (e.g. stache-skip-deferral)")
		aggFlag    = flag.Bool("aggregate", false, "enable node-leader message aggregation on every combination")
		jitter     = flag.Int("jitter", 0, "interconnect jitter pct: 0 = derive per seed, >0 force, <0 off")
		maxEvents  = flag.Int64("max-events", 0, "per-run simulation event budget (0 = default)")
		maxFail    = flag.Int("max-failures", 1, "stop after this many failing seeds")
		noShrink   = flag.Bool("no-shrink", false, "skip minimizing failing seeds")
		expectFail = flag.Bool("expect-fail", false, "invert the exit status: succeed only if a failure was found (mutation testing)")
		out        = flag.String("out", "", "directory to write failing-seed reproducer JSON files")
		server     = flag.String("server", "", "submit the seed band to this dsmserve base URL instead of simulating locally")
		quiet      = flag.Bool("q", false, "suppress per-seed progress")
	)
	flag.Parse()

	sc, err := chaos.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the campaign between seeds; artifacts for the
	// seeds that did run are flushed before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := chaos.Options{
		Seeds:       *seeds,
		Start:       *start,
		Scale:       sc,
		Caps:        chaos.Caps{Nodes: *maxNodes, Phases: *maxPhases, Iters: *maxIters, Blocks: *maxBlocks},
		Mutation:    *mutate,
		Aggregate:   *aggFlag,
		JitterPct:   *jitter,
		MaxEvents:   *maxEvents,
		MaxFailures: *maxFail,
		NoShrink:    *noShrink,
		Ctx:         ctx,
	}
	if !*quiet {
		o.Log = os.Stderr
	}
	if *seed >= 0 {
		o.Seeds, o.Start = 1, *seed
	}

	if *server != "" {
		if *repro || *mutate != "" {
			fmt.Fprintln(os.Stderr, "protofuzz: -server does not support -repro or -mutate (run those locally)")
			os.Exit(2)
		}
		runServer(ctx, *server, o, *expectFail, *out)
		return
	}

	if *repro {
		if *seed < 0 {
			fmt.Fprintln(os.Stderr, "protofuzz: -repro requires -seed")
			os.Exit(2)
		}
		r := chaos.RunSeed(*seed, o)
		fmt.Print(r.Render())
		if r.Failed() {
			exit(*expectFail, true)
		}
		exit(*expectFail, false)
	}

	rep := chaos.Fuzz(o)
	for _, f := range rep.Failures {
		fmt.Printf("protofuzz: seed %d FAILED (%d oracle violations), minimal nodes=%d phases=%d iters=%d blocks=%d\n",
			f.Seed, len(f.Result.Failures), f.Min.Nodes, f.Min.Phases, f.Min.Iters, f.Min.Blocks)
		for _, msg := range f.MinResult.Failures {
			fmt.Printf("  %s\n", msg)
		}
		fmt.Printf("  repro: %s\n", f.Repro)
		if *out != "" {
			if err := writeReproducer(*out, f); err != nil {
				fmt.Fprintf(os.Stderr, "protofuzz: writing reproducer: %v\n", err)
			}
		}
	}
	if rep.Interrupted {
		fmt.Printf("protofuzz: interrupted after %d seeds (%d failed); partial artifacts flushed\n",
			rep.SeedsRun, len(rep.Failures))
		os.Exit(130)
	}
	if rep.Ok() {
		fmt.Printf("protofuzz: %d seeds clean (scale=%s start=%d)\n", rep.SeedsRun, sc, o.Start)
		exit(*expectFail, false)
	}
	fmt.Printf("protofuzz: %d/%d seeds failed\n", len(rep.Failures), rep.SeedsRun)
	exit(*expectFail, true)
}

// runServer submits the seed band as one batch to a dsmserve instance
// and consumes the NDJSON verdict stream. The differential oracle runs
// server-side; this client checks verdicts, honors -max-failures, and
// writes reproducer artifacts for failing seeds.
func runServer(ctx context.Context, base string, o chaos.Options, expectFail bool, out string) {
	cl := &serve.Client{Base: base}
	req := serve.BatchRequest{SeedRange: &serve.SeedRange{
		Start:     o.Start,
		Count:     o.Seeds,
		Scale:     string(o.Scale),
		JitterPct: o.JitterPct,
		MaxEvents: o.MaxEvents,
		MaxNodes:  o.Caps.Nodes,
		MaxPhases: o.Caps.Phases,
		MaxIters:  o.Caps.Iters,
		MaxBlocks: o.Caps.Blocks,
	}}
	maxFail := o.MaxFailures
	if maxFail <= 0 {
		maxFail = 1
	}
	seedsRun, failed := 0, 0
	errStop := errors.New("max failures reached")
	err := cl.Batch(ctx, req, func(r *serve.Result) error {
		seedsRun++
		if r.Err != "" {
			failed++
			fmt.Printf("protofuzz: spec %s job error: %s\n", r.SpecHash, r.Err)
		} else if d := diffOf(r); d == nil {
			failed++
			fmt.Printf("protofuzz: spec %s: malformed result (no differential payload)\n", r.SpecHash)
		} else if d.Failed() {
			failed++
			fmt.Printf("protofuzz: seed %d FAILED (%d oracle violations)\n", d.Seed, len(d.Failures))
			for _, msg := range d.Failures {
				fmt.Printf("  %s\n", msg)
			}
			repro := chaos.ReproCommand(d.Seed, o, o.Caps)
			fmt.Printf("  repro: %s\n", repro)
			if out != "" {
				f := chaos.Failure{Seed: d.Seed, Result: *d, Min: o.Caps, MinResult: *d, Repro: repro}
				if err := writeReproducer(out, f); err != nil {
					fmt.Fprintf(os.Stderr, "protofuzz: writing reproducer: %v\n", err)
				}
			}
		} else if o.Log != nil {
			fmt.Fprintf(o.Log, "seed %d ok (%s)\n", d.Seed, d.Spec)
		}
		if failed >= maxFail {
			return errStop
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		if ctx.Err() != nil {
			fmt.Printf("protofuzz: interrupted after %d seeds (%d failed); partial artifacts flushed\n", seedsRun, failed)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "protofuzz:", err)
		os.Exit(2)
	}
	if failed == 0 {
		fmt.Printf("protofuzz: %d seeds clean (server=%s scale=%s start=%d)\n", seedsRun, base, o.Scale, o.Start)
		exit(expectFail, false)
	}
	fmt.Printf("protofuzz: %d/%d seeds failed\n", failed, seedsRun)
	exit(expectFail, true)
}

// diffOf extracts a result's differential payload, nil if absent.
func diffOf(r *serve.Result) *chaos.SeedResult {
	if r.Chaos == nil {
		return nil
	}
	return r.Chaos.Diff
}

// writeReproducer dumps one failure as JSON for CI artifact upload.
func writeReproducer(dir string, f chaos.Failure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-seed-%d.json", f.Seed))
	fmt.Printf("  reproducer: %s\n", path)
	return os.WriteFile(path, data, 0o644)
}

// exit maps (expectFail, failed) to the process status: normally
// failures are fatal; under -expect-fail a clean campaign is the error.
func exit(expectFail, failed bool) {
	switch {
	case expectFail && !failed:
		fmt.Fprintln(os.Stderr, "protofuzz: expected a failure but every seed passed")
		os.Exit(1)
	case !expectFail && failed:
		os.Exit(1)
	}
	os.Exit(0)
}
