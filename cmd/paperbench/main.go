// Command paperbench regenerates the paper's tables and figures.
//
// Usage:
//
//	paperbench [-experiment all|table1|figure4|figure5|figure6|figure7|scale|sweep|ablate-*]
//	           [-list] [-scale quick|paper] [-net <preset>] [-aggregate]
//	           [-csv out.csv] [-json out.json]
//	           [-engine serial|parallel] [-workers N] [-sched wheel|heap]
//	           [-profile] [-predict]
//	           [-kernel-bench out.json] [-kernel-filter re]
//	           [-kernel-diff base.json] [-kernel-diff-out diff.json]
//	           [-kernel-speedup]
//	           [-cpuprofile f] [-memprofile f]
//
// -json (default BENCH_results.json; "" disables) writes every
// experiment's rows — including the per-phase metrics — as one
// machine-readable JSON document.
//
// -scale paper runs the Table 1 workload sizes on 32 simulated nodes
// (minutes of wall clock); -scale quick (default) runs CI-sized versions
// of the same experiments.
//
// -net accepts every topology preset (network.Grammars lists them),
// including the hierarchical ones: cluster:<groups>x<cores>,
// cluster:<groups>x<subgroups>x<cores>, mesh:<w>x<h> and
// fattree:<levels>. -aggregate enables node-leader message aggregation
// on every machine the experiments build — meaningful with a
// hierarchical -net preset, a structural no-op on flat machines.
//
// -profile turns on the causal critical-path profiler for every machine
// the experiments build. Figure rows then carry an exact time-attribution
// profile (validated: buckets sum to total simulated time), rendered as
// an extra table and embedded in the -json output. Simulated results are
// identical with or without it.
//
// -predict answers the figure 5-7 and sweep experiments from the
// analytical predictor (internal/predict): one recorded calibration
// simulation per program/protocol, every row extrapolated — no per-row
// simulation. The run then appends the predict-error experiment, whose
// predicted-vs-simulated error table prints and lands in the -json
// artifact alongside the predicted rows.
//
// -engine parallel runs the simulation kernel's conservative parallel
// engine (results are byte-identical to serial; only wall clock changes).
// -workers caps its worker goroutines (default GOMAXPROCS). -sched heap
// swaps the kernel's timing-wheel event scheduler for the binary-heap
// reference (also byte-identical; differential testing).
//
// -kernel-bench runs the kernel hot-path micro-benchmarks
// (internal/kernelbench) plus a serial-vs-parallel wall-clock comparison
// of figure5 and a >=1000-configuration analytical-predictor sweep timed
// against per-configuration simulation, writes them as JSON, and exits.
// The run fails (non-zero exit) when a zero-alloc-guarded case
// allocates, a cross-case ratio guard is exceeded (e.g. mesh8_parallel4
// > 1.1x mesh8_serial), or the predictor sweep is less than 100x faster
// than simulating.
// -kernel-filter restricts the run to cases matching the regexp and
// skips the figure5 wall-clock comparison — the CI regression diff uses
// it to keep the job fast. -kernel-diff compares the fresh run against a
// committed BENCH_kernel.json and fails on a >25% ns/op regression in
// any guarded case; when the baseline was taken on a different host shape
// (NumCPU or GOMAXPROCS differ) the ns/op gating is skipped — wall-clock
// ratios across hosts are noise — while the zero-alloc guards still
// apply. -kernel-diff-out writes the comparison as a JSON artifact.
// -kernel-speedup additionally evaluates the multi-core speedup guards
// (parallel dense cases must beat their serial twins by >= 2x); CI runs
// it in the bench-multicore job at GOMAXPROCS=4.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"presto/internal/harness"
	"presto/internal/kernelbench"
	"presto/internal/network"
	"presto/internal/predict"
	"presto/internal/prof"
	"presto/internal/rt"
)

func main() {
	expID := flag.String("experiment", "all", "experiment ID or 'all'")
	list := flag.Bool("list", false, "list experiment IDs with descriptions and exit")
	scaleStr := flag.String("scale", "quick", "workload scale: quick or paper")
	netName := flag.String("net", "", "override the default interconnect preset ("+network.Grammars()+"); experiments with per-row presets keep them")
	aggregate := flag.Bool("aggregate", false, "enable node-leader message aggregation (hierarchical -net presets)")
	csvPath := flag.String("csv", "", "also write rows as CSV to this file")
	jsonPath := flag.String("json", "BENCH_results.json", "write machine-readable results to this file (\"\" disables)")
	engine := flag.String("engine", "serial", "kernel engine: serial or parallel")
	workers := flag.Int("workers", 0, "parallel-engine workers (0 = GOMAXPROCS)")
	sched := flag.String("sched", "wheel", "kernel event scheduler: wheel or heap")
	profile := flag.Bool("profile", false, "enable the causal profiler on the figure experiments: rows gain a validated attribution profile, rendered after the phase tables and exported in -json")
	predictFlag := flag.Bool("predict", false, "answer the figure and sweep experiments from the analytical predictor (one calibration per program/protocol, no per-row simulation) and append the predictor-vs-simulation error table (predict-error) to the run and the -json artifact")
	predictValidate := flag.String("predict-validate", "", "run the predictor validation gate — every figure 5-7 configuration plus a -predict-band chaos seed band at the 2x block-size extrapolation — write the error table CSV to this `file` and exit non-zero unless the mean absolute elapsed-time error is under 15%")
	predictBand := flag.Int("predict-band", 100, "chaos seeds in the -predict-validate band")
	predictWide := flag.String("predict-validate-wide", "", "with -predict-validate: also write the informational error table for the wider 4x/8x chaos extrapolations (reported, not gated) to this `file`")
	kernelBench := flag.String("kernel-bench", "", "run kernel micro-benchmarks, write JSON to this file and exit")
	kernelFilter := flag.String("kernel-filter", "", "run only kernel benchmark cases matching this `regexp` (skips the figure5 wall-clock comparison)")
	kernelDiff := flag.String("kernel-diff", "", "compare the kernel benchmark run against this baseline JSON; fail on >25% ns/op regression in guarded cases (ns/op gating is skipped when the baseline host shape differs)")
	kernelSpeedup := flag.Bool("kernel-speedup", false, "evaluate the multi-core speedup guards (kernelbench.SpeedupGuards); requires a multi-core host — CI runs this at GOMAXPROCS=4")
	kernelDiffOut := flag.String("kernel-diff-out", "", "write the -kernel-diff comparison as JSON to this file")
	kernelBase := flag.String("kernel-bench-baseline", "", "embed this `go test -bench` output as the baseline section")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	stopProf := prof.Start(*cpuprofile, *memprofile)
	defer stopProf()

	// SIGINT/SIGTERM stop the run at the next experiment (or kernel-bench
	// case) boundary; the artifacts for the work already done are flushed
	// before exit so a partial run stays inspectable.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	opts := harness.Options{
		Scale:     harness.ParseScale(*scaleStr),
		Engine:    rt.EngineKind(*engine),
		Workers:   *workers,
		Sched:     rt.SchedKind(*sched),
		Profile:   *profile,
		Predict:   *predictFlag,
		Aggregate: *aggregate,
	}
	if *netName != "" {
		p, err := network.Preset(*netName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		if err := p.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		opts.Net = p
	}

	if *predictValidate != "" {
		if err := runPredictValidate(opts, *predictValidate, *predictWide, *predictBand); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			stopProf()
			os.Exit(1)
		}
		return
	}

	if *kernelBench != "" {
		kb := kernelBenchRun{
			path:         *kernelBench,
			baselinePath: *kernelBase,
			filter:       *kernelFilter,
			diffPath:     *kernelDiff,
			diffOutPath:  *kernelDiffOut,
			speedup:      *kernelSpeedup,
			opts:         opts,
			ctx:          ctx,
		}
		if err := kb.run(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			stopProf()
			if errors.Is(err, errInterrupted) {
				os.Exit(130)
			}
			os.Exit(1)
		}
		return
	}

	var exps []harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		e, ok := harness.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *expID)
			for _, e := range harness.All() {
				fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}
	if *predictFlag {
		// -predict is a validation mode as much as a fast path: always
		// finish with the predictor-vs-simulation error table so the run
		// (and BENCH_results.json) carries its own accuracy evidence.
		have := false
		for _, e := range exps {
			if e.ID == "predict-error" {
				have = true
			}
		}
		if !have {
			if e, ok := harness.ByID("predict-error"); ok {
				exps = append(exps, e)
			}
		}
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csv = f
	}

	var results []*harness.Result
	interrupted := false
	for _, e := range exps {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		start := time.Now()
		res, err := harness.RunExperiment(e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			stopProf()
			os.Exit(1)
		}
		fmt.Printf("paper claim: %s\n", e.Paper)
		res.Render(os.Stdout)
		if csv != nil {
			res.CSV(csv)
		}
		results = append(results, res)
		fmt.Printf("(%s finished in %v at %s scale)\n\n", e.ID, time.Since(start).Round(time.Millisecond), *scaleStr)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteJSON(f, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "paperbench: interrupted after %d/%d experiments; partial artifacts flushed\n",
			len(results), len(exps))
		stopProf()
		os.Exit(130)
	}
}

// predictValidateMaxMAE is the CI gate on the analytical predictor: the
// mean absolute elapsed-time error over the figure 5-7 sweeps plus the
// 2x-extrapolation chaos band must stay under 15% (DESIGN.md §13).
const predictValidateMaxMAE = 15.0

// runPredictValidate executes the predict-validate CI job: build the
// gated error table (figures + shift-1 chaos band), write it as the
// uploaded artifact, optionally record the wider informational band, and
// fail the process when the gate is breached.
func runPredictValidate(opts harness.Options, path, widePath string, seeds int) error {
	table, err := harness.PredictValidation(opts, seeds)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	table.WriteCSV(f)
	if err := f.Close(); err != nil {
		return err
	}
	table.Render(os.Stdout)
	fmt.Printf("wrote %s\n", path)

	if widePath != "" {
		wide, err := predict.ChaosBandShifts(seeds, []int{2, 3})
		if err != nil {
			return err
		}
		wf, err := os.Create(widePath)
		if err != nil {
			return err
		}
		wide.WriteCSV(wf)
		if err := wf.Close(); err != nil {
			return err
		}
		fmt.Printf("wide band (4x/8x, informational): mean absolute error %.2f%% over %d rows (max %.2f%%)\n",
			wide.MAE(), len(wide.Rows), wide.MaxErr())
		fmt.Printf("wrote %s\n", widePath)
	}

	if mae := table.MAE(); mae >= predictValidateMaxMAE {
		return fmt.Errorf("predict-validate: mean absolute error %.2f%% over %d rows breaches the %.0f%% gate",
			mae, len(table.Rows), predictValidateMaxMAE)
	}
	fmt.Printf("predict-validate: mean absolute error %.2f%% over %d rows — under the %.0f%% gate\n",
		table.MAE(), len(table.Rows), predictValidateMaxMAE)
	return nil
}

// errInterrupted marks a kernel-bench run stopped by SIGINT/SIGTERM;
// the partial JSON document has already been written when it surfaces.
var errInterrupted = errors.New("interrupted")

// kernelBenchDoc is the BENCH_kernel.json schema.
type kernelBenchDoc struct {
	// Host describes where the numbers were taken; wall-clock comparisons
	// only mean something relative to NumCPU.
	Host struct {
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	// Micro are the kernel hot-path micro-benchmarks (internal/kernelbench).
	Micro []microResult `json:"micro"`
	// Baseline holds pre-optimization numbers for the same workloads
	// (parsed from a recorded `go test -bench` output), when provided.
	Baseline []microResult `json:"baseline,omitempty"`
	// Figure5 compares serial vs parallel wall clock for the figure5
	// experiment at quick scale (byte-identical results, different engines).
	// Omitted under -kernel-filter.
	Figure5 *figure5Result `json:"figure5,omitempty"`
	// PredictSweep times a >=1000-configuration parameter sweep answered
	// by the analytical predictor against the measured cost of simulating
	// every configuration; the run fails unless the sweep is at least
	// MinSpeedup (100x) faster. Omitted under -kernel-filter.
	PredictSweep *predictSweepResult `json:"predict_sweep,omitempty"`
	// Ratios are the cross-case performance guards (kernelbench.RatioGuards)
	// evaluated on this run; a guard whose cases were filtered out is
	// omitted rather than evaluated on stale numbers.
	Ratios []ratioResult `json:"ratios,omitempty"`
	// MsgRatios are the counter-ratio guards (kernelbench.MsgRatioGuards):
	// full runtime runs whose message counters must differ by at least the
	// guard's bound (the aggregation cross-group reduction). Omitted under
	// -kernel-filter, like the other full-run sections.
	MsgRatios []msgRatioResult `json:"msg_ratios,omitempty"`
	// Speedups are the multi-core wall-clock guards
	// (kernelbench.SpeedupGuards), recorded only under -kernel-speedup:
	// a single-CPU host cannot show parallel speedup, so the guards are
	// opt-in rather than part of every run.
	Speedups []speedupResult `json:"speedups,omitempty"`
}

type predictSweepResult struct {
	harness.SweepBench
	MinSpeedup float64 `json:"min_speedup"`
	OK         bool    `json:"ok"`
}

type ratioResult struct {
	Name  string  `json:"name"`
	Num   string  `json:"num"`
	Den   string  `json:"den"`
	Ratio float64 `json:"ratio"`
	Max   float64 `json:"max"`
	OK    bool    `json:"ok"`
}

type msgRatioResult struct {
	Name   string  `json:"name"`
	Num    string  `json:"num"`
	Den    string  `json:"den"`
	Ratio  float64 `json:"ratio"`
	Min    float64 `json:"min"`
	Detail string  `json:"detail,omitempty"`
	OK     bool    `json:"ok"`
}

type speedupResult struct {
	Name     string  `json:"name"`
	Parallel string  `json:"parallel"`
	Serial   string  `json:"serial"`
	Speedup  float64 `json:"speedup"` // serial ns/op ÷ parallel ns/op
	Min      float64 `json:"min"`
	OK       bool    `json:"ok"`
}

type microResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	// Guarded marks a zero-allocation hot path: the bench-regression
	// gate fails the run when a guarded case reports allocs_per_op > 0.
	Guarded bool `json:"guarded,omitempty"`
}

type figure5Result struct {
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Workers    int     `json:"workers"`
	Speedup    float64 `json:"speedup"`
	// Note flags measurements that cannot show parallel speedup (e.g. a
	// single-CPU host, where workers only add scheduling overhead).
	Note string `json:"note,omitempty"`
}

// kernelBenchRun bundles the -kernel-bench mode's inputs.
type kernelBenchRun struct {
	path         string // output JSON (BENCH_kernel.json shape)
	baselinePath string // optional `go test -bench` text to embed
	filter       string // optional case-name regexp
	diffPath     string // optional baseline JSON to diff against
	diffOutPath  string // optional diff artifact path
	speedup      bool   // evaluate SpeedupGuards (multi-core hosts only)
	opts         harness.Options
	// ctx stops the run between benchmark cases (SIGINT/SIGTERM); the
	// partial document is still written.
	ctx context.Context
}

// run measures the kernel micro-benchmarks (optionally filtered) and the
// figure5 serial-vs-parallel wall clock, writes them as one JSON
// document, then applies the gates: zero-alloc guards, cross-case ratio
// guards, and — under -kernel-diff — the ns/op regression bound against
// a committed baseline.
func (kb *kernelBenchRun) run() error {
	var keep func(string) bool = func(string) bool { return true }
	if kb.filter != "" {
		re, err := regexp.Compile(kb.filter)
		if err != nil {
			return fmt.Errorf("-kernel-filter: %v", err)
		}
		keep = re.MatchString
	}

	var doc kernelBenchDoc
	doc.Host.NumCPU = runtime.NumCPU()
	doc.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Host.GoVersion = runtime.Version()
	if kb.baselinePath != "" {
		base, err := parseBenchOutput(kb.baselinePath)
		if err != nil {
			return err
		}
		doc.Baseline = base
	}

	var gateFailures []string
	ran, interrupted := 0, false
	for _, c := range kernelbench.Cases() {
		if kb.ctx != nil && kb.ctx.Err() != nil {
			interrupted = true
			break
		}
		if !keep(c.Name) {
			continue
		}
		ran++
		r := testing.Benchmark(c.Bench)
		doc.Micro = append(doc.Micro, microResult{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Guarded:     c.ZeroAlloc,
		})
		guard := ""
		if c.ZeroAlloc {
			guard = " [guarded]"
			if r.AllocsPerOp() > 0 {
				gateFailures = append(gateFailures,
					fmt.Sprintf("%s: %d allocs/op (want 0)", c.Name, r.AllocsPerOp()))
			}
		}
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op%s\n",
			c.Name, doc.Micro[len(doc.Micro)-1].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp(), guard)
	}
	if interrupted {
		// Flush the cases measured so far and stop; the gates and the
		// figure5 comparison need a complete run to mean anything.
		if err := writeJSONFile(kb.path, &doc); err != nil {
			return err
		}
		fmt.Printf("wrote %s (partial: %d cases)\n", kb.path, ran)
		return fmt.Errorf("%w after %d benchmark cases", errInterrupted, ran)
	}
	if ran == 0 {
		return fmt.Errorf("-kernel-filter %q matches no benchmark case", kb.filter)
	}

	// Cross-case ratio guards, evaluated only when both cases ran (a
	// filtered run must not compare against numbers it did not take).
	nsOf := func(name string) (float64, bool) {
		for _, m := range doc.Micro {
			if m.Name == name {
				return m.NsPerOp, true
			}
		}
		return 0, false
	}
	for _, g := range kernelbench.RatioGuards() {
		num, okN := nsOf(g.Num)
		den, okD := nsOf(g.Den)
		if !okN || !okD {
			continue
		}
		rr := ratioResult{Name: g.Name, Num: g.Num, Den: g.Den, Ratio: num / den, Max: g.Max}
		rr.OK = rr.Ratio <= g.Max
		doc.Ratios = append(doc.Ratios, rr)
		status := "ok"
		if !rr.OK {
			status = "FAIL"
			gateFailures = append(gateFailures,
				fmt.Sprintf("%s: %s/%s = %.3f exceeds %.2f", g.Name, g.Num, g.Den, rr.Ratio, g.Max))
		}
		fmt.Printf("ratio %-22s %s/%s = %.3f (max %.2f) %s\n", g.Name, g.Num, g.Den, rr.Ratio, g.Max, status)
	}

	// Multi-core speedup guards, opt-in: they assert wall-clock scaling,
	// which only a multi-core host can deliver. Filtered-out cases are
	// skipped like the ratio guards.
	if kb.speedup {
		evaluated := 0
		for _, g := range kernelbench.SpeedupGuards() {
			par, okP := nsOf(g.Parallel)
			ser, okS := nsOf(g.Serial)
			if !okP || !okS {
				continue
			}
			evaluated++
			sr := speedupResult{Name: g.Name, Parallel: g.Parallel, Serial: g.Serial,
				Speedup: ser / par, Min: g.MinSpeedup}
			sr.OK = sr.Speedup >= g.MinSpeedup
			doc.Speedups = append(doc.Speedups, sr)
			status := "ok"
			if !sr.OK {
				status = "FAIL"
				gateFailures = append(gateFailures,
					fmt.Sprintf("%s: %s runs %.2fx faster than %s (want >= %.1fx; GOMAXPROCS=%d)",
						g.Name, g.Parallel, sr.Speedup, g.Serial, g.MinSpeedup, runtime.GOMAXPROCS(0)))
			}
			fmt.Printf("speedup %-20s %s/%s = %.2fx (min %.1fx) %s\n",
				g.Name, g.Serial, g.Parallel, sr.Speedup, g.MinSpeedup, status)
		}
		if evaluated == 0 {
			return fmt.Errorf("-kernel-speedup: the filter %q excludes every speedup-guarded case", kb.filter)
		}
	}

	// Counter-ratio guards: full runtime runs, so they join the other
	// full-run sections in being skipped under -kernel-filter.
	if kb.filter == "" {
		for _, g := range kernelbench.MsgRatioGuards() {
			num, den, detail, err := g.Eval()
			if err != nil {
				gateFailures = append(gateFailures, fmt.Sprintf("%s: %v", g.Name, err))
				fmt.Printf("msgratio %-19s FAIL: %v\n", g.Name, err)
				continue
			}
			mr := msgRatioResult{Name: g.Name, Num: g.Num, Den: g.Den,
				Ratio: num / den, Min: g.Min, Detail: detail}
			mr.OK = mr.Ratio >= g.Min
			doc.MsgRatios = append(doc.MsgRatios, mr)
			status := "ok"
			if !mr.OK {
				status = "FAIL"
				gateFailures = append(gateFailures,
					fmt.Sprintf("%s: %s/%s = %.2fx below %.1fx (%s)", g.Name, g.Num, g.Den, mr.Ratio, g.Min, detail))
			}
			fmt.Printf("msgratio %-19s %s/%s = %.2fx (min %.1fx) %s [%s]\n",
				g.Name, g.Num, g.Den, mr.Ratio, g.Min, status, detail)
		}
	}

	if kb.filter == "" {
		fig5, err := kb.figure5()
		if err != nil {
			return err
		}
		doc.Figure5 = fig5

		ps, err := kb.predictSweep()
		if err != nil {
			return err
		}
		doc.PredictSweep = ps
		if !ps.OK {
			gateFailures = append(gateFailures, fmt.Sprintf(
				"predict_sweep: %d-config sweep only %.1fx faster than simulating (want >= %.0fx)",
				ps.Configs, ps.SweepSpeedup, ps.MinSpeedup))
		}
	}

	if err := writeJSONFile(kb.path, &doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", kb.path)

	if kb.diffPath != "" {
		failures, err := kb.diff(&doc)
		if err != nil {
			return err
		}
		gateFailures = append(gateFailures, failures...)
	}

	// The document (and diff artifact) are written either way, so a failed
	// run stays inspectable; the gates fail the process afterwards.
	if len(gateFailures) > 0 {
		return fmt.Errorf("kernel benchmark gates failed:\n  %s",
			strings.Join(gateFailures, "\n  "))
	}
	return nil
}

// figure5 times the figure5 experiment under both engines.
func (kb *kernelBenchRun) figure5() (*figure5Result, error) {
	fig5, ok := harness.ByID("figure5")
	if !ok {
		return nil, fmt.Errorf("figure5 not registered")
	}
	workers := kb.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	timeRun := func(o harness.Options) (float64, error) {
		start := time.Now()
		_, err := harness.RunExperiment(fig5, o)
		return float64(time.Since(start).Nanoseconds()) / 1e6, err
	}
	serialMS, err := timeRun(harness.Options{Scale: kb.opts.Scale, Engine: rt.EngineSerial})
	if err != nil {
		return nil, err
	}
	parallelMS, err := timeRun(harness.Options{Scale: kb.opts.Scale, Engine: rt.EngineParallel, Workers: workers})
	if err != nil {
		return nil, err
	}
	res := &figure5Result{
		SerialMS:   serialMS,
		ParallelMS: parallelMS,
		Workers:    workers,
		Speedup:    serialMS / parallelMS,
	}
	numCPU := runtime.NumCPU()
	if numCPU < 4 && res.Speedup < 2 {
		res.Note = fmt.Sprintf(
			"host has %d CPU(s); wall-clock speedup requires a multi-core host — results remain byte-identical",
			numCPU)
	}
	fmt.Printf("figure5 wall clock: serial %.1fms, parallel(%d workers) %.1fms, speedup %.2fx on %d CPUs\n",
		serialMS, workers, parallelMS, res.Speedup, numCPU)
	return res, nil
}

// predictSweepMinSpeedup is the required wall-clock advantage of the
// analytical predictor over per-configuration simulation on a large
// sweep (the paper's motivating use case: answering parameter-space
// questions without simulating each point).
const (
	predictSweepConfigs    = 1008
	predictSweepMinSpeedup = 100
)

// predictSweep times the >=1000-configuration analytical sweep against
// the measured per-configuration simulation cost.
func (kb *kernelBenchRun) predictSweep() (*predictSweepResult, error) {
	sb, err := harness.PredictSweepBench(harness.Options{Scale: kb.opts.Scale}, predictSweepConfigs)
	if err != nil {
		return nil, err
	}
	res := &predictSweepResult{SweepBench: *sb, MinSpeedup: predictSweepMinSpeedup}
	res.OK = res.SweepSpeedup >= res.MinSpeedup
	fmt.Printf("predict sweep: %d configs in %.1fms (calibration %.1fms) vs %.1fms/config simulated — %.0fx sweep, %.0fx amortized\n",
		res.Configs, res.PredictTotalMS, res.CalibrationMS, res.SimPerConfigMS,
		res.SweepSpeedup, res.AmortizedSpeedup)
	return res, nil
}

// kernelDiffDoc is the -kernel-diff-out artifact: the per-case ns/op
// comparison between a committed baseline and the fresh run.
type kernelDiffDoc struct {
	BaselinePath string `json:"baseline_path"`
	// HostMatch is false when the baseline was taken on a different host
	// shape (NumCPU or GOMAXPROCS differ). ns/op ratios between different
	// hosts are noise, so the regression gate is skipped — the comparison
	// rows are still recorded, and the zero-alloc guards (host-independent)
	// apply either way.
	HostMatch  bool            `json:"host_match"`
	Note       string          `json:"note,omitempty"`
	MaxRegress float64         `json:"max_regress"` // allowed fractional ns/op growth on guarded cases
	Cases      []kernelDiffRow `json:"cases"`
	Failures   []string        `json:"failures,omitempty"`
}

type kernelDiffRow struct {
	Name       string  `json:"name"`
	BaseNsOp   float64 `json:"base_ns_per_op"`
	NsOp       float64 `json:"ns_per_op"`
	Change     float64 `json:"change"` // fractional: 0.25 = 25% slower
	Guarded    bool    `json:"guarded"`
	Regression bool    `json:"regression"`
}

// kernelDiffMaxRegress is the allowed fractional ns/op growth for a
// guarded case between the committed baseline and a fresh CI run; wide
// enough to absorb shared-runner noise, tight enough to catch a real
// hot-path regression.
const kernelDiffMaxRegress = 0.25

// diff compares the fresh run against the committed baseline document and
// returns gate failures for guarded cases that regressed beyond the
// bound. Cases present on only one side (renames, filters) are skipped.
func (kb *kernelBenchRun) diff(doc *kernelBenchDoc) ([]string, error) {
	data, err := os.ReadFile(kb.diffPath)
	if err != nil {
		return nil, err
	}
	var base kernelBenchDoc
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %v", kb.diffPath, err)
	}
	baseNs := make(map[string]float64, len(base.Micro))
	for _, m := range base.Micro {
		baseNs[m.Name] = m.NsPerOp
	}
	out := kernelDiffDoc{BaselinePath: kb.diffPath, HostMatch: true, MaxRegress: kernelDiffMaxRegress}
	if base.Host.NumCPU != doc.Host.NumCPU || base.Host.GOMAXPROCS != doc.Host.GOMAXPROCS {
		out.HostMatch = false
		out.Note = fmt.Sprintf(
			"baseline host %d CPU / GOMAXPROCS %d, this host %d / %d: ns/op regression gating skipped (alloc guards still apply)",
			base.Host.NumCPU, base.Host.GOMAXPROCS, doc.Host.NumCPU, doc.Host.GOMAXPROCS)
		fmt.Printf("kernel-diff: %s\n", out.Note)
	}
	for _, m := range doc.Micro {
		bns, ok := baseNs[m.Name]
		if !ok || bns <= 0 {
			continue
		}
		row := kernelDiffRow{
			Name:     m.Name,
			BaseNsOp: bns,
			NsOp:     m.NsPerOp,
			Change:   m.NsPerOp/bns - 1,
			Guarded:  m.Guarded,
		}
		row.Regression = out.HostMatch && row.Guarded && row.Change > kernelDiffMaxRegress
		if row.Regression {
			out.Failures = append(out.Failures, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (%+.1f%%, bound +%.0f%%)",
				m.Name, m.NsPerOp, bns, 100*row.Change, 100*kernelDiffMaxRegress))
		}
		out.Cases = append(out.Cases, row)
		fmt.Printf("diff %-28s %12.1f -> %10.1f ns/op  %+6.1f%%\n", m.Name, bns, m.NsPerOp, 100*row.Change)
	}
	if len(out.Cases) == 0 {
		return nil, fmt.Errorf("-kernel-diff: no case of this run exists in %s", kb.diffPath)
	}
	if kb.diffOutPath != "" {
		if err := writeJSONFile(kb.diffOutPath, &out); err != nil {
			return nil, err
		}
		fmt.Printf("wrote %s\n", kb.diffOutPath)
	}
	return out.Failures, nil
}

// writeJSONFile writes v with stable two-space indentation.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseBenchOutput extracts per-benchmark numbers from `go test -bench
// -benchmem` text output lines such as
//
//	BenchmarkKernel/send_recv  1272314  959.1 ns/op  128 B/op  2 allocs/op
func parseBenchOutput(path string) ([]microResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []microResult
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		name = strings.TrimSuffix(name, "-"+fmt.Sprint(runtime.GOMAXPROCS(0)))
		r := microResult{Name: name}
		r.N, _ = strconv.Atoi(f[1])
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}
