// Command paperbench regenerates the paper's tables and figures.
//
// Usage:
//
//	paperbench [-experiment all|table1|figure4|figure5|figure6|figure7|sweep|ablate-*]
//	           [-list] [-scale quick|paper] [-net cm5|now|hwdsm]
//	           [-csv out.csv] [-json out.json]
//	           [-engine serial|parallel] [-workers N]
//	           [-kernel-bench out.json] [-cpuprofile f] [-memprofile f]
//
// -json (default BENCH_results.json; "" disables) writes every
// experiment's rows — including the per-phase metrics — as one
// machine-readable JSON document.
//
// -scale paper runs the Table 1 workload sizes on 32 simulated nodes
// (minutes of wall clock); -scale quick (default) runs CI-sized versions
// of the same experiments.
//
// -engine parallel runs the simulation kernel's conservative parallel
// engine (results are byte-identical to serial; only wall clock changes).
// -workers caps its worker goroutines (default GOMAXPROCS).
//
// -kernel-bench runs the kernel hot-path micro-benchmarks
// (internal/kernelbench) plus a serial-vs-parallel wall-clock comparison
// of figure5, writes them as JSON, and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"presto/internal/harness"
	"presto/internal/kernelbench"
	"presto/internal/network"
	"presto/internal/prof"
	"presto/internal/rt"
)

func main() {
	expID := flag.String("experiment", "all", "experiment ID or 'all'")
	list := flag.Bool("list", false, "list experiment IDs with descriptions and exit")
	scaleStr := flag.String("scale", "quick", "workload scale: quick or paper")
	netName := flag.String("net", "", "override the default interconnect preset (cm5, now or hwdsm); experiments with per-row presets keep them")
	csvPath := flag.String("csv", "", "also write rows as CSV to this file")
	jsonPath := flag.String("json", "BENCH_results.json", "write machine-readable results to this file (\"\" disables)")
	engine := flag.String("engine", "serial", "kernel engine: serial or parallel")
	workers := flag.Int("workers", 0, "parallel-engine workers (0 = GOMAXPROCS)")
	kernelBench := flag.String("kernel-bench", "", "run kernel micro-benchmarks, write JSON to this file and exit")
	kernelBase := flag.String("kernel-bench-baseline", "", "embed this `go test -bench` output as the baseline section")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	stopProf := prof.Start(*cpuprofile, *memprofile)
	defer stopProf()

	opts := harness.Options{
		Scale:   harness.ParseScale(*scaleStr),
		Engine:  rt.EngineKind(*engine),
		Workers: *workers,
	}
	if *netName != "" {
		p, err := network.Preset(*netName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		if err := p.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		opts.Net = p
	}

	if *kernelBench != "" {
		if err := runKernelBench(*kernelBench, *kernelBase, opts); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			stopProf()
			os.Exit(1)
		}
		return
	}

	var exps []harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		e, ok := harness.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *expID)
			for _, e := range harness.All() {
				fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csv = f
	}

	var results []*harness.Result
	for _, e := range exps {
		start := time.Now()
		res, err := harness.RunExperiment(e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			stopProf()
			os.Exit(1)
		}
		fmt.Printf("paper claim: %s\n", e.Paper)
		res.Render(os.Stdout)
		if csv != nil {
			res.CSV(csv)
		}
		results = append(results, res)
		fmt.Printf("(%s finished in %v at %s scale)\n\n", e.ID, time.Since(start).Round(time.Millisecond), *scaleStr)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteJSON(f, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// kernelBenchDoc is the BENCH_kernel.json schema.
type kernelBenchDoc struct {
	// Host describes where the numbers were taken; wall-clock comparisons
	// only mean something relative to NumCPU.
	Host struct {
		NumCPU     int    `json:"num_cpu"`
		GOMAXPROCS int    `json:"gomaxprocs"`
		GoVersion  string `json:"go_version"`
	} `json:"host"`
	// Micro are the kernel hot-path micro-benchmarks (internal/kernelbench).
	Micro []microResult `json:"micro"`
	// Baseline holds pre-optimization numbers for the same workloads
	// (parsed from a recorded `go test -bench` output), when provided.
	Baseline []microResult `json:"baseline,omitempty"`
	// Figure5 compares serial vs parallel wall clock for the figure5
	// experiment at quick scale (byte-identical results, different engines).
	Figure5 figure5Result `json:"figure5"`
}

type microResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	N           int     `json:"n"`
	// Guarded marks a zero-allocation hot path: the bench-regression
	// gate fails the run when a guarded case reports allocs_per_op > 0.
	Guarded bool `json:"guarded,omitempty"`
}

type figure5Result struct {
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Workers    int     `json:"workers"`
	Speedup    float64 `json:"speedup"`
	// Note flags measurements that cannot show parallel speedup (e.g. a
	// single-CPU host, where workers only add scheduling overhead).
	Note string `json:"note,omitempty"`
}

// runKernelBench measures the kernel micro-benchmarks and the figure5
// serial-vs-parallel wall clock, and writes them as one JSON document.
func runKernelBench(path, baselinePath string, opts harness.Options) error {
	var doc kernelBenchDoc
	doc.Host.NumCPU = runtime.NumCPU()
	doc.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)
	doc.Host.GoVersion = runtime.Version()
	if baselinePath != "" {
		base, err := parseBenchOutput(baselinePath)
		if err != nil {
			return err
		}
		doc.Baseline = base
	}

	var allocRegressions []string
	for _, c := range kernelbench.Cases() {
		r := testing.Benchmark(c.Bench)
		doc.Micro = append(doc.Micro, microResult{
			Name:        c.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			Guarded:     c.ZeroAlloc,
		})
		guard := ""
		if c.ZeroAlloc {
			guard = " [guarded]"
			if r.AllocsPerOp() > 0 {
				allocRegressions = append(allocRegressions,
					fmt.Sprintf("%s: %d allocs/op (want 0)", c.Name, r.AllocsPerOp()))
			}
		}
		fmt.Printf("%-28s %12.1f ns/op %8d B/op %6d allocs/op%s\n",
			c.Name, doc.Micro[len(doc.Micro)-1].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp(), guard)
	}

	fig5, ok := harness.ByID("figure5")
	if !ok {
		return fmt.Errorf("figure5 not registered")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	timeRun := func(o harness.Options) (float64, error) {
		start := time.Now()
		_, err := harness.RunExperiment(fig5, o)
		return float64(time.Since(start).Nanoseconds()) / 1e6, err
	}
	serialMS, err := timeRun(harness.Options{Scale: opts.Scale, Engine: rt.EngineSerial})
	if err != nil {
		return err
	}
	parallelMS, err := timeRun(harness.Options{Scale: opts.Scale, Engine: rt.EngineParallel, Workers: workers})
	if err != nil {
		return err
	}
	doc.Figure5 = figure5Result{
		SerialMS:   serialMS,
		ParallelMS: parallelMS,
		Workers:    workers,
		Speedup:    serialMS / parallelMS,
	}
	if doc.Host.NumCPU < 4 && doc.Figure5.Speedup < 2 {
		doc.Figure5.Note = fmt.Sprintf(
			"host has %d CPU(s); wall-clock speedup requires a multi-core host — results remain byte-identical",
			doc.Host.NumCPU)
	}
	fmt.Printf("figure5 wall clock: serial %.1fms, parallel(%d workers) %.1fms, speedup %.2fx on %d CPUs\n",
		serialMS, workers, parallelMS, doc.Figure5.Speedup, doc.Host.NumCPU)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	// The document is written either way (so a failed run is inspectable);
	// the allocation gate fails the process afterwards.
	if len(allocRegressions) > 0 {
		return fmt.Errorf("allocation regression on guarded hot paths:\n  %s",
			strings.Join(allocRegressions, "\n  "))
	}
	return nil
}

// parseBenchOutput extracts per-benchmark numbers from `go test -bench
// -benchmem` text output lines such as
//
//	BenchmarkKernel/send_recv  1272314  959.1 ns/op  128 B/op  2 allocs/op
func parseBenchOutput(path string) ([]microResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []microResult
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := f[0]
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		name = strings.TrimSuffix(name, "-"+fmt.Sprint(runtime.GOMAXPROCS(0)))
		r := microResult{Name: name}
		r.N, _ = strconv.Atoi(f[1])
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}
