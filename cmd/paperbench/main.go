// Command paperbench regenerates the paper's tables and figures.
//
// Usage:
//
//	paperbench [-experiment all|table1|figure4|figure5|figure6|figure7|sweep|ablate-*]
//	           [-scale quick|paper] [-csv out.csv] [-json out.json]
//
// -json (default BENCH_results.json; "" disables) writes every
// experiment's rows — including the per-phase metrics — as one
// machine-readable JSON document.
//
// -scale paper runs the Table 1 workload sizes on 32 simulated nodes
// (minutes of wall clock); -scale quick (default) runs CI-sized versions
// of the same experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"presto/internal/harness"
)

func main() {
	expID := flag.String("experiment", "all", "experiment ID or 'all'")
	scaleStr := flag.String("scale", "quick", "workload scale: quick or paper")
	csvPath := flag.String("csv", "", "also write rows as CSV to this file")
	jsonPath := flag.String("json", "BENCH_results.json", "write machine-readable results to this file (\"\" disables)")
	flag.Parse()

	scale := harness.ParseScale(*scaleStr)
	var exps []harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		e, ok := harness.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *expID)
			for _, e := range harness.All() {
				fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		exps = []harness.Experiment{e}
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csv = f
	}

	var results []*harness.Result
	for _, e := range exps {
		start := time.Now()
		res, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("paper claim: %s\n", e.Paper)
		res.Render(os.Stdout)
		if csv != nil {
			res.CSV(csv)
		}
		results = append(results, res)
		fmt.Printf("(%s finished in %v at %s scale)\n\n", e.ID, time.Since(start).Round(time.Millisecond), *scaleStr)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := harness.WriteJSON(f, results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
