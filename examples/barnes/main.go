// Barnes example: the paper's gravitational N-body benchmark (§5.2) at
// reduced scale — 2048 bodies, 3 time steps on 16 nodes — reproducing the
// Figure 6 comparison including the block-size crossover: the predictive
// protocol wins at small blocks, while Barnes's spatial locality lets the
// unoptimized version catch up at 1024-byte blocks.
//
//	go run ./examples/barnes
package main

import (
	"fmt"
	"log"

	"presto"
)

func main() {
	fmt.Println("Barnes-Hut (2048 bodies, 3 steps, 16 nodes)")
	fmt.Printf("%-24s %10s %12s %10s %14s %8s\n",
		"version", "total", "remote-wait", "pre-send", "compute+synch", "faults")

	run := func(label string, cfg presto.BarnesConfig) *presto.BarnesResult {
		r, err := presto.RunBarnes(cfg)
		if err != nil {
			log.Fatal(err)
		}
		b := r.Breakdown
		fmt.Printf("%-24s %10v %12v %10v %14v %8d\n",
			label, b.Elapsed, b.RemoteWait, b.Presend, b.ComputeSynch(),
			r.Counters.ReadFaults+r.Counters.WriteFaults)
		return r
	}

	mk := func(proto presto.Config, spmd bool) presto.BarnesConfig {
		return presto.BarnesConfig{Machine: proto, Bodies: 2048, Iters: 3, SPMD: spmd}
	}
	u32 := run("C** unopt (32B)", mk(presto.Config{Nodes: 16, BlockSize: 32, Protocol: presto.Stache}, false))
	o32 := run("C** opt (32B)", mk(presto.Config{Nodes: 16, BlockSize: 32, Protocol: presto.Predictive}, false))
	u1k := run("C** unopt (1024B)", mk(presto.Config{Nodes: 16, BlockSize: 1024, Protocol: presto.Stache}, false))
	o1k := run("C** opt (1024B)", mk(presto.Config{Nodes: 16, BlockSize: 1024, Protocol: presto.Predictive}, false))
	spmd := run("SPMD write-update (1024B)", mk(presto.Config{Nodes: 16, BlockSize: 1024, Protocol: presto.Update}, true))

	if u32.Checksum != o32.Checksum || u32.Checksum != u1k.Checksum || u32.Checksum != o1k.Checksum {
		log.Fatal("write-invalidate versions disagree")
	}
	_ = spmd // the update protocol trades strict consistency for speed

	fmt.Println("\nAt 32B blocks the pre-send eliminates most force-phase read faults;")
	fmt.Println("at 1024B one fetched block carries ~10 neighboring tree cells, so the")
	fmt.Println("unoptimized version nearly closes the gap (the paper's Figure 6 story).")
	fmt.Printf("crossover: unopt(1024) vs opt(32) speedup = %.2fx\n",
		float64(o32.Breakdown.Elapsed)/float64(u1k.Breakdown.Elapsed))
}
