// Unstructured example: the paper's Figure-3-style irregular bipartite
// mesh, comparing the predictive protocol against the related work the
// paper positions itself against (§2): a CHAOS-style Inspector-Executor.
// The mesh is run twice — static, and adapting a few percent of its edges
// every third iteration (the paper's "incremental changes between
// iterations are small" scenario).
//
//	go run ./examples/unstructured
package main

import (
	"fmt"
	"log"

	"presto"
)

func main() {
	base := presto.UnstructuredConfig{
		Machine: presto.Config{Nodes: 16, BlockSize: 32},
		Primal:  1024, Dual: 1024, Edges: 6, Iters: 12,
	}
	for _, mesh := range []struct {
		label string
		adapt int
	}{{"static mesh", 0}, {"adaptive mesh (3% churn / 3 iters)", 3}} {
		fmt.Printf("%s\n", mesh.label)
		fmt.Printf("  %-22s %10s %12s %10s %14s %12s\n",
			"strategy", "total", "remote-wait", "pre-send", "compute+synch", "inspections")
		var ref float64
		for _, s := range []presto.UnstructuredConfig{
			{Strategy: presto.PlainStrategy},
			{Strategy: presto.PredictiveStrategy},
			{Strategy: presto.InspectorStrategy},
		} {
			cfg := base
			cfg.Strategy = s.Strategy
			cfg.AdaptEvery = mesh.adapt
			r, err := presto.RunUnstructured(cfg)
			if err != nil {
				log.Fatal(err)
			}
			b := r.Breakdown
			fmt.Printf("  %-22s %10v %12v %10v %14v %12d\n",
				s.Strategy, b.Elapsed, b.RemoteWait, b.Presend, b.ComputeSynch(), r.Inspections)
			if ref == 0 {
				ref = r.Checksum
			} else if r.Checksum != ref {
				log.Fatalf("strategies disagree: %v vs %v", r.Checksum, ref)
			}
		}
		fmt.Println()
	}
	fmt.Println("All strategies compute identical results. The predictive protocol")
	fmt.Println("matches the inspector-executor without any inspector/executor code,")
	fmt.Println("and absorbs mesh adaptation through incremental schedules (paper §2).")
}
