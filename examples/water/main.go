// Water example: the paper's molecular-dynamics benchmark (§5.3) at
// reduced scale — 256 molecules, 10 steps on 16 nodes — reproducing the
// Figure 7 three-way comparison: the data-parallel version with and
// without the predictive protocol, plus a Splash-2-style shared-memory
// variant that accumulates reaction forces under per-molecule locks.
//
//	go run ./examples/water
package main

import (
	"fmt"
	"log"

	"presto"
)

func main() {
	fmt.Println("Water n-squared (256 molecules, 10 steps, 16 nodes, best block size per version)")
	fmt.Printf("%-18s %10s %12s %10s %14s\n",
		"version", "total", "remote-wait", "pre-send", "compute+synch")

	best := func(label string, proto presto.Config, splash bool) *presto.WaterResult {
		var bestR *presto.WaterResult
		bestBS := 0
		for _, bs := range []int{32, 128, 256} {
			cfg := presto.WaterConfig{Machine: proto, Molecules: 256, Steps: 10, Splash: splash}
			cfg.Machine.BlockSize = bs
			r, err := presto.RunWater(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if bestR == nil || r.Breakdown.Elapsed < bestR.Breakdown.Elapsed {
				bestR, bestBS = r, bs
			}
		}
		b := bestR.Breakdown
		fmt.Printf("%-18s %10v %12v %10v %14v\n",
			fmt.Sprintf("%s (%dB)", label, bestBS), b.Elapsed, b.RemoteWait, b.Presend, b.ComputeSynch())
		return bestR
	}

	opt := best("C** opt", presto.Config{Nodes: 16, Protocol: presto.Predictive}, false)
	unopt := best("C** unopt", presto.Config{Nodes: 16, Protocol: presto.Stache}, false)
	splash := best("Splash", presto.Config{Nodes: 16, Protocol: presto.Stache}, true)

	if opt.Energy != unopt.Energy || opt.Energy != splash.Energy {
		log.Fatal("versions disagree on the energy checksum")
	}
	fmt.Printf("\nall versions agree (energy %.4f)\n", opt.Energy)
	fmt.Printf("opt vs unopt: %.2fx (paper: 1.05x); opt vs Splash: %.2fx (paper: 1.2x)\n",
		float64(unopt.Breakdown.Elapsed)/float64(opt.Breakdown.Elapsed),
		float64(splash.Breakdown.Elapsed)/float64(opt.Breakdown.Elapsed))
	fmt.Println("\nThe position pattern is static, so the schedule is complete after one")
	fmt.Println("step — but Water is compute-dominated, so the end-to-end win is small,")
	fmt.Println("exactly the paper's observation.")
}
