// Quickstart: the full pipeline on one page.
//
// A cstar (C**-subset) Jacobi relaxation is compiled — the compiler
// summarizes each parallel function's accesses and places pre-send
// directives — and then executed on a simulated 16-node fine-grain DSM
// twice: under the default Stache write-invalidate protocol and under the
// paper's predictive protocol. The predictive run learns the repetitive
// boundary communication in iteration one and pre-sends it afterwards,
// cutting remote-data wait.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"presto"
)

const src = `
aggregate Cell[,] {
  float v;
  float nv;
}

// Inject a hot west wall.
parallel func inject(parallel g: Cell) {
  if #1 == 0 {
    g.v = 1;
  }
}

// 4-point stencil into the second buffer (neighbor reads communicate at
// partition boundaries).
parallel func sweep(parallel g: Cell) {
  g.nv = 0.25 * (g[#0-1, #1].v + g[#0+1, #1].v + g[#0, #1-1].v + g[#0, #1+1].v);
}

// Commit the interior (owner writes).
parallel func commit(parallel g: Cell) {
  if #1 > 0 {
    g.v = g.nv;
  }
}

func main() {
  let g = Cell[96, 96];
  inject(g);
  for it in 0..40 {
    sweep(g);
    commit(g);
  }
  let total = reduce(+, g.v);
}
`

func main() {
	analysis, err := presto.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== compiler analysis (paper §4) ===")
	fmt.Println(analysis.Report())

	run := func(proto presto.Config) *presto.ExecuteResult {
		a, err := presto.Compile(src) // fresh analysis per machine
		if err != nil {
			log.Fatal(err)
		}
		r, err := presto.Execute(a, presto.ExecuteOptions{Machine: proto})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	unopt := run(presto.Config{Nodes: 16, BlockSize: 32, Protocol: presto.Stache})
	opt := run(presto.Config{Nodes: 16, BlockSize: 32, Protocol: presto.Predictive})

	fmt.Println("=== execution on the simulated DSM (32B blocks, 16 nodes) ===")
	fmt.Printf("%-22s %12s %12s %12s %14s\n", "version", "total", "remote-wait", "pre-send", "compute+synch")
	for _, v := range []struct {
		label string
		r     *presto.ExecuteResult
	}{{"Stache (unoptimized)", unopt}, {"predictive (optimized)", opt}} {
		b := v.r.Breakdown
		fmt.Printf("%-22s %12v %12v %12v %14v\n", v.label, b.Elapsed, b.RemoteWait, b.Presend, b.ComputeSynch())
	}
	fmt.Printf("\nresults identical: %v (checksum %.6f)\n",
		unopt.Scalars["total"] == opt.Scalars["total"], opt.Scalars["total"])
	fmt.Printf("speedup: %.2fx; pre-sent blocks: %d (%d bulk messages)\n",
		float64(unopt.Breakdown.Elapsed)/float64(opt.Breakdown.Elapsed),
		opt.Counters.PresendsSent, opt.Counters.BulkMsgs)
	if v := presto.CheckCoherence(opt.Machine); len(v) > 0 {
		log.Fatalf("coherence violations: %v", v)
	}
	fmt.Println("coherence invariants: ok")
}
