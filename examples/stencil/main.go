// Stencil example: a walk through the compiler pipeline (paper §4) on an
// unstructured-mesh-flavored program: access summaries, the
// reaching-unstructured-accesses data-flow, directive placement with a
// hoisted home-only loop, and an execution comparing the protocols.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"presto"
)

// The program interleaves an unstructured gather (reads of an indirection
// target, like the paper's bipartite-mesh update in Figure 3), a home-only
// smoothing loop (hoisted directive), and an owner-write refresh phase.
const src = `
aggregate Field[] {
  float val;
  float flux;
}

// Seed the field with a gradient (owner writes).
parallel func seed(parallel f: Field) {
  f.val = #0 * 0.001;
}

// Unstructured gather: each element pulls flux from a strided remote
// neighborhood (indirection-array style communication).
parallel func gather(parallel f: Field) {
  f.flux = f[#0 + 17].val + f[#0 + 33].val + f[#0 - 17].val;
}

// Home-only smoothing, applied several times per iteration: candidate
// for directive hoisting.
parallel func smooth(parallel f: Field) {
  f.flux = f.flux * 0.5;
}

// Owner write: fold the flux back into the value (kills reaching
// unstructured accesses).
parallel func apply(parallel f: Field) {
  f.val = f.val + f.flux * 0.1;
}

func main() {
  let f = Field[2048];
  seed(f);
  for it in 0..12 {
    gather(f);
    for s in 0..4 {
      smooth(f);
    }
    apply(f);
  }
  let total = reduce(+, f.val);
}
`

func main() {
	a, err := presto.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(a.Report())

	for _, proto := range []struct {
		label string
		kind  presto.Config
	}{
		{"stache", presto.Config{Nodes: 8, BlockSize: 32, Protocol: presto.Stache}},
		{"predictive", presto.Config{Nodes: 8, BlockSize: 32, Protocol: presto.Predictive}},
	} {
		a2, err := presto.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		r, err := presto.Execute(a2, presto.ExecuteOptions{Machine: proto.kind})
		if err != nil {
			log.Fatal(err)
		}
		b := r.Breakdown
		fmt.Printf("%-11s total=%v remote=%v presend=%v compute+synch=%v total-checksum=%.4f\n",
			proto.label, b.Elapsed, b.RemoteWait, b.Presend, b.ComputeSynch(), r.Scalars["total"])
	}
	fmt.Println("\nThe hoisted directive covers every execution of the smooth loop with")
	fmt.Println("one pre-send per outer iteration (the paper's coalescing optimization).")
}
