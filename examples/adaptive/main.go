// Adaptive example: the paper's structured adaptive mesh benchmark (§5.1)
// at a laptop-friendly scale — a 64x64 mesh on 16 simulated nodes —
// comparing the unoptimized (Stache) and optimized (predictive) versions
// at two cache-block sizes, like Figure 5.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"presto"
)

func main() {
	fmt.Println("Adaptive mesh relaxation (64x64, 40 iterations, 16 nodes)")
	fmt.Printf("%-18s %10s %12s %10s %14s %9s %8s\n",
		"version", "total", "remote-wait", "pre-send", "compute+synch", "refined", "faults")

	var base *presto.AdaptiveResult
	for _, v := range []struct {
		label string
		proto presto.Config
	}{
		{"unopt (32B)", presto.Config{Nodes: 16, BlockSize: 32, Protocol: presto.Stache}},
		{"opt   (32B)", presto.Config{Nodes: 16, BlockSize: 32, Protocol: presto.Predictive}},
		{"unopt (256B)", presto.Config{Nodes: 16, BlockSize: 256, Protocol: presto.Stache}},
		{"opt   (256B)", presto.Config{Nodes: 16, BlockSize: 256, Protocol: presto.Predictive}},
	} {
		r, err := presto.RunAdaptive(presto.AdaptiveConfig{
			Machine: v.proto, Size: 64, Iters: 40, RefineEvery: 4,
		})
		if err != nil {
			log.Fatal(err)
		}
		b := r.Breakdown
		fmt.Printf("%-18s %10v %12v %10v %14v %9d %8d\n",
			v.label, b.Elapsed, b.RemoteWait, b.Presend, b.ComputeSynch(),
			r.Refined, r.Counters.ReadFaults+r.Counters.WriteFaults)
		if base == nil {
			base = r
		} else if r.Checksum != base.Checksum {
			log.Fatalf("checksum mismatch: %v vs %v", r.Checksum, base.Checksum)
		}
		if vs := presto.CheckCoherence(r.Machine); len(vs) > 0 {
			log.Fatalf("coherence violations: %v", vs)
		}
	}
	fmt.Println("\nAll versions computed identical results; coherence invariants hold.")
	fmt.Println("The refined region grows as the solution front advances; the")
	fmt.Println("predictive protocol learns each new quad-tree block after one fault")
	fmt.Println("and pre-sends it in later sweeps (incremental schedules, paper §3.3).")
}
